package arrive

import (
	"fmt"
	"sort"
)

// Job is a queued batch job.
type Job struct {
	ID      string
	NP      int     // slots needed
	Runtime float64 // seconds on the HPC cluster
	Submit  float64 // submission time
	// CloudSlowdown is the job's runtime multiplier when burst to the
	// cloud (communication-bound jobs suffer, compute-bound barely do) —
	// typically Predict(cloud).Total / Predict(hpc).Total.
	CloudSlowdown float64
}

// BurstPolicy controls when jobs leave the HPC queue for the cloud.
type BurstPolicy struct {
	Enabled bool
	// MaxSlowdown: only burst jobs whose cloud slowdown is at most this
	// (the ARRIVE-F candidate filter).
	MaxSlowdown float64
	// MinQueueWait: burst only when the job would otherwise wait at least
	// this long (seconds).
	MinQueueWait float64
	// CloudSlots is the burst capacity (0 = unlimited on-demand).
	CloudSlots int
}

// QueueStats summarises a simulation.
type QueueStats struct {
	Jobs        int
	Burst       int     // jobs sent to the cloud
	AvgWait     float64 // mean queue wait over HPC jobs, seconds
	MaxWait     float64
	Makespan    float64
	CloudSecs   float64 // cloud core-seconds consumed (for cost estimates)
	AvgSlowdown float64 // mean of (wait+run)/run over all jobs
}

// interval is one scheduled execution.
type interval struct {
	start, end float64
	slots      int
}

// usageAfter returns the slots of intervals still running strictly after t.
func usageAfter(iv []interval, t float64) int {
	used := 0
	for _, r := range iv {
		if r.end > t && r.start <= t {
			used += r.slots
		}
	}
	return used
}

// SimulateQueue runs a strict-FCFS (no backfill) list scheduler over the
// jobs on an HPC cluster with hpcSlots cores, optionally bursting eligible
// jobs to the cloud at their submit time. It reproduces the
// motivation-section claim that profile-guided bursting "improves the
// average job waiting times" substantially once the HPC queue saturates.
//
// SimulateQueue is deliberately kept as the small-N oracle for
// internal/facility: its quadratic interval walk is an independent,
// obviously-correct implementation of FCFS list scheduling, and the
// facility cross-validation test requires that an event-driven facility
// run with backfill, fairshare, broker and spot all disabled reproduces
// these stats bit-for-bit (facility.OracleStats folds outcomes back into
// QueueStats using this function's exact accumulation order).
func SimulateQueue(jobs []Job, hpcSlots int, policy BurstPolicy) (QueueStats, error) {
	if hpcSlots <= 0 {
		return QueueStats{}, fmt.Errorf("arrive: need positive cluster capacity")
	}
	ordered := append([]Job(nil), jobs...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Submit < ordered[j].Submit })

	var hpc, cloud []interval
	var stats QueueStats
	prevStart := 0.0 // strict FCFS: starts never go backwards

	for _, j := range ordered {
		if j.NP > hpcSlots {
			return QueueStats{}, fmt.Errorf("arrive: job %s needs %d slots, cluster has %d", j.ID, j.NP, hpcSlots)
		}
		// Earliest feasible HPC start: walk the candidate times (submit,
		// previous start, ends of running jobs) until NP slots are free.
		start := j.Submit
		if prevStart > start {
			start = prevStart
		}
		ends := make([]float64, 0, len(hpc))
		for _, r := range hpc {
			if r.end > start {
				ends = append(ends, r.end)
			}
		}
		sort.Float64s(ends)
		for hpcSlots-usageAfter(hpc, start) < j.NP {
			if len(ends) == 0 {
				return QueueStats{}, fmt.Errorf("arrive: internal scheduling inconsistency for %s", j.ID)
			}
			start = ends[0]
			ends = ends[1:]
		}
		wait := start - j.Submit

		// Burst decision, evaluated with cloud occupancy at submit time.
		if policy.Enabled && j.CloudSlowdown > 0 &&
			j.CloudSlowdown <= policy.MaxSlowdown && wait >= policy.MinQueueWait &&
			(policy.CloudSlots == 0 || usageAfter(cloud, j.Submit)+j.NP <= policy.CloudSlots) {
			run := j.Runtime * j.CloudSlowdown
			cloud = append(cloud, interval{start: j.Submit, end: j.Submit + run, slots: j.NP})
			stats.Burst++
			stats.CloudSecs += run * float64(j.NP)
			stats.AvgSlowdown += run / j.Runtime
			if end := j.Submit + run; end > stats.Makespan {
				stats.Makespan = end
			}
			stats.Jobs++
			continue
		}

		hpc = append(hpc, interval{start: start, end: start + j.Runtime, slots: j.NP})
		prevStart = start
		stats.AvgWait += wait
		if wait > stats.MaxWait {
			stats.MaxWait = wait
		}
		stats.AvgSlowdown += (wait + j.Runtime) / j.Runtime
		if end := start + j.Runtime; end > stats.Makespan {
			stats.Makespan = end
		}
		stats.Jobs++
	}
	if n := stats.Jobs - stats.Burst; n > 0 {
		stats.AvgWait /= float64(n)
	}
	if stats.Jobs > 0 {
		stats.AvgSlowdown /= float64(stats.Jobs)
	}
	return stats, nil
}
