package arrive

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/mpi"
	"repro/internal/platform"
)

// profileWorkload runs a synthetic workload on Vayu and profiles it.
func profileWorkload(t *testing.T, np, collectives int, flops float64, ioBytes int64) *WorkloadProfile {
	t.Helper()
	out, err := core.Execute(core.RunSpec{Platform: platform.Vayu(), NP: np}, func(c *mpi.Comm) error {
		if ioBytes > 0 {
			c.ReadShared(ioBytes, np)
		}
		for i := 0; i < 20; i++ {
			c.Compute(cpumodel.Work{Flops: flops / 20 / float64(np)})
			for k := 0; k < collectives/20; k++ {
				c.AllreduceN(8)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := cluster.Place(platform.Vayu(), cluster.Spec{NP: np})
	if err != nil {
		t.Fatal(err)
	}
	return FromProfile("synthetic", out.Profile, platform.Vayu(), pl.MaxRanksPerNode())
}

func TestClassify(t *testing.T) {
	compute := profileWorkload(t, 8, 0, 1e12, 0)
	if got := compute.Classify(); got != ComputeBound {
		t.Fatalf("pure compute classified %v", got)
	}
	if !compute.CloudFriendly(platform.EC2(), 1.5) {
		t.Fatal("compute-bound workloads are cloud candidates")
	}
	comm := profileWorkload(t, 16, 50000, 1e9, 0)
	if got := comm.Classify(); got != CommBound {
		t.Fatalf("chatty workload classified %v", got)
	}
	if comm.CloudFriendly(platform.EC2(), 1.5) {
		t.Fatal("communication-bound workloads should not burst")
	}
	io := profileWorkload(t, 2, 0, 1e8, 64<<30)
	if got := io.Classify(); got != IOBound {
		t.Fatalf("io-heavy workload classified %v", got)
	}
}

func TestPredictComputeScalesWithClock(t *testing.T) {
	w := profileWorkload(t, 8, 0, 1e12, 0)
	v := w.Predict(platform.Vayu())
	d := w.Predict(platform.DCC())
	if !v.Feasible || !d.Feasible {
		t.Fatalf("both should be feasible: %+v %+v", v, d)
	}
	ratio := d.Compute / v.Compute
	// Clock ratio x DCC overhead: 2.93/2.27 * 1.06 ~ 1.37.
	if ratio < 1.2 || ratio > 1.55 {
		t.Fatalf("DCC/Vayu compute prediction ratio = %.2f, want ~1.37", ratio)
	}
}

func TestPredictCommPenalisesSlowNetworks(t *testing.T) {
	w := profileWorkload(t, 32, 20000, 1e10, 0)
	v := w.Predict(platform.Vayu())
	d := w.Predict(platform.DCC())
	if d.Comm < 5*v.Comm {
		t.Fatalf("DCC comm prediction %.2f should dwarf Vayu's %.2f", d.Comm, v.Comm)
	}
}

func TestPredictInfeasible(t *testing.T) {
	w := profileWorkload(t, 8, 0, 1e10, 0)
	w.NP = 1000 // beyond DCC and EC2 capacity
	d := w.Predict(platform.DCC())
	if d.Feasible || d.Reason == "" {
		t.Fatalf("1000 ranks on DCC should be infeasible: %+v", d)
	}
	if w.Predict(platform.Vayu()); !w.Predict(platform.Vayu()).Feasible {
		t.Fatal("Vayu holds 1000 ranks")
	}
}

func TestRecommendOrdering(t *testing.T) {
	// A compute-bound job: Vayu should win (fastest cores), infeasible
	// platforms must sort last.
	w := profileWorkload(t, 8, 10, 1e12, 0)
	preds := w.Recommend(platform.All())
	if preds[0].Platform != "vayu" {
		t.Fatalf("best platform = %s, want vayu", preds[0].Platform)
	}
	for i := 1; i < len(preds); i++ {
		if preds[i-1].Feasible == preds[i].Feasible && preds[i-1].Total > preds[i].Total {
			t.Fatal("recommendations not sorted by predicted time")
		}
	}
	if preds[0].String() == "" {
		t.Fatal("prediction should render")
	}
}

func TestQueueBurstingReducesWait(t *testing.T) {
	// A saturated queue: many compute-bound jobs on a small cluster.
	var jobs []Job
	for i := 0; i < 40; i++ {
		jobs = append(jobs, Job{
			ID: "job", NP: 32, Runtime: 3600,
			Submit:        float64(i * 60),
			CloudSlowdown: 1.2,
		})
	}
	base, err := SimulateQueue(jobs, 64, BurstPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	burst, err := SimulateQueue(jobs, 64, BurstPolicy{
		Enabled: true, MaxSlowdown: 1.5, MinQueueWait: 600,
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.AvgWait <= 0 {
		t.Fatalf("saturated baseline should have waits, got %+v", base)
	}
	if burst.Burst == 0 {
		t.Fatal("policy should burst some jobs")
	}
	improvement := (base.AvgWait - burst.AvgWait) / base.AvgWait
	t.Logf("avg wait: base=%.0fs burst=%.0fs (%.0f%% better, %d jobs burst)",
		base.AvgWait, burst.AvgWait, improvement*100, burst.Burst)
	// The ARRIVE-F paper reports ~33% improvement; we only need a clear win.
	if improvement < 0.2 {
		t.Fatalf("bursting should improve waits by >= 20%%, got %.0f%%", improvement*100)
	}
	if burst.CloudSecs <= 0 {
		t.Fatal("burst jobs should consume cloud time")
	}
}

func TestQueueSlowJobsStayHome(t *testing.T) {
	jobs := []Job{
		{ID: "chatty", NP: 16, Runtime: 1000, Submit: 0, CloudSlowdown: 6.7},
		{ID: "chatty2", NP: 16, Runtime: 1000, Submit: 1, CloudSlowdown: 6.7},
	}
	stats, err := SimulateQueue(jobs, 16, BurstPolicy{Enabled: true, MaxSlowdown: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Burst != 0 {
		t.Fatalf("communication-bound jobs must not burst, got %d", stats.Burst)
	}
}

func TestQueueErrors(t *testing.T) {
	if _, err := SimulateQueue(nil, 0, BurstPolicy{}); err == nil {
		t.Fatal("zero capacity should fail")
	}
	if _, err := SimulateQueue([]Job{{ID: "big", NP: 128, Runtime: 1}}, 64, BurstPolicy{}); err == nil {
		t.Fatal("oversized job should fail")
	}
}

func TestQueueLimitedCloudSlots(t *testing.T) {
	var jobs []Job
	for i := 0; i < 10; i++ {
		jobs = append(jobs, Job{ID: "j", NP: 8, Runtime: 100, Submit: 0, CloudSlowdown: 1.1})
	}
	stats, err := SimulateQueue(jobs, 8, BurstPolicy{Enabled: true, MaxSlowdown: 2, CloudSlots: 16})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Burst > 2 {
		t.Fatalf("only 16 cloud slots: at most 2 concurrent bursts initially, got %d", stats.Burst)
	}
}
