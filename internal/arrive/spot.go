package arrive

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Spot-market support: the paper's Section VI closes with "we plan to
// integrate Amazon EC2 spot-pricing into our local ANUPBS scheduler, to
// avail of price competitive compute resources". This file implements
// that step: a deterministic spot-price process (mean-reverting around a
// fraction of the on-demand price, with demand spikes), and a job runner
// with bid/outbid/checkpoint-restart semantics so schedulers can weigh
// cost against completion risk.

// SpotMarket generates a deterministic hourly price path for one instance
// type.
type SpotMarket struct {
	OnDemand float64 // $ per node-hour (cc1.4xlarge was $1.60 in 2011)
	Mean     float64 // long-run spot mean, $/node-hour
	Floor    float64
	Sigma    float64 // hourly volatility, $
	SpikeP   float64 // probability of a demand spike in any hour
	SpikeMul float64 // spike price multiplier over on-demand

	seed uint64
}

// NewSpotMarket returns the 2011-era cc1.4xlarge market model: spot
// hovering around 35% of on-demand with occasional spikes above it.
func NewSpotMarket(seed uint64) *SpotMarket {
	return &SpotMarket{
		OnDemand: 1.60,
		Mean:     0.56,
		Floor:    0.30,
		Sigma:    0.08,
		SpikeP:   0.02,
		SpikeMul: 1.5,
		seed:     seed,
	}
}

// Price returns the spot price during hour h (deterministic in seed and
// h: the whole path up to h is replayed).
func (m *SpotMarket) Price(h int) float64 {
	if h < 0 {
		h = 0
	}
	rng := sim.NewRNG(m.seed).Derive(0x5907)
	p := m.Mean
	for i := 0; i <= h; i++ {
		// Mean reversion plus noise.
		p += 0.3*(m.Mean-p) + m.Sigma*rng.Normal()
		if rng.Float64() < m.SpikeP {
			p = m.OnDemand * m.SpikeMul * (1 + 0.3*rng.Float64())
		}
		if p < m.Floor {
			p = m.Floor
		}
	}
	return p
}

// SpotOutcome summarises one spot execution attempt.
type SpotOutcome struct {
	Completed     bool
	Interruptions int
	WallHours     float64 // submission to completion, including waits
	ComputeHours  float64 // billed node-hours
	Cost          float64 // spot bill, $
	OnDemandCost  float64 // what the same job costs on demand, $
	Savings       float64 // 1 - Cost/OnDemandCost (negative = more expensive)
}

// SpotRun executes a job of `hours` node-hours-per-node duration on
// `nodes` spot instances with the given bid: the job runs in hours where
// the spot price is at or below the bid, is interrupted (losing progress
// back to the last checkpoint) when outbid, and resumes when the price
// recovers. checkpointHours of 0 means no checkpointing: every
// interruption restarts from zero. maxHours bounds the attempt.
func (m *SpotMarket) SpotRun(hours float64, nodes int, bid, checkpointHours, maxHours float64) (SpotOutcome, error) {
	if hours <= 0 || nodes <= 0 {
		return SpotOutcome{}, fmt.Errorf("arrive: spot job needs positive size")
	}
	if bid <= 0 {
		return SpotOutcome{}, fmt.Errorf("arrive: bid must be positive")
	}
	if maxHours <= 0 {
		maxHours = 24 * 14
	}
	out := SpotOutcome{OnDemandCost: hours * float64(nodes) * m.OnDemand}

	progress := 0.0   // completed node-local hours
	checkpoint := 0.0 // durable progress
	running := false
	for h := 0; float64(h) < maxHours; h++ {
		price := m.Price(h)
		if price <= bid {
			if !running && out.ComputeHours > 0 {
				// Resuming after an interruption: restart from checkpoint.
				progress = checkpoint
			}
			running = true
			// One hour of execution on all nodes.
			step := math.Min(1, hours-progress)
			progress += step
			out.ComputeHours += step * float64(nodes)
			out.Cost += step * float64(nodes) * price
			if checkpointHours > 0 {
				// Durable progress advances in checkpoint quanta.
				checkpoint = math.Floor(progress/checkpointHours) * checkpointHours
			}
			if progress >= hours {
				out.Completed = true
				out.WallHours = float64(h) + 1
				break
			}
		} else if running {
			running = false
			out.Interruptions++
			if checkpointHours <= 0 {
				checkpoint = 0
			}
		}
	}
	if !out.Completed {
		out.WallHours = maxHours
	}
	if out.OnDemandCost > 0 {
		out.Savings = 1 - out.Cost/out.OnDemandCost
	}
	return out, nil
}

// BestBid sweeps candidate bids between the market floor and the
// on-demand price and returns the cheapest bid that completes the job
// within maxHours (falling back to the most reliable bid when none
// completes).
func (m *SpotMarket) BestBid(hours float64, nodes int, checkpointHours, maxHours float64) (float64, SpotOutcome, error) {
	bestBid := 0.0
	var best SpotOutcome
	found := false
	for bid := m.Floor; bid <= m.OnDemand*1.05; bid += 0.05 {
		out, err := m.SpotRun(hours, nodes, bid, checkpointHours, maxHours)
		if err != nil {
			return 0, SpotOutcome{}, err
		}
		better := false
		switch {
		case out.Completed && (!found || !best.Completed):
			better = true
		case out.Completed == best.Completed && out.Cost < best.Cost && found:
			better = out.Completed // only compare costs among completing bids
		case !found:
			better = true
		}
		if better {
			bestBid, best, found = bid, out, true
		}
	}
	if !found {
		return 0, SpotOutcome{}, fmt.Errorf("arrive: no viable bid")
	}
	return bestBid, best, nil
}
