package arrive

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/sim"
)

// Spot-market support: the paper's Section VI closes with "we plan to
// integrate Amazon EC2 spot-pricing into our local ANUPBS scheduler, to
// avail of price competitive compute resources". This file implements
// that step: a deterministic spot-price process (mean-reverting around a
// fraction of the on-demand price, with demand spikes), and a job runner
// with bid/outbid/checkpoint-restart semantics so schedulers can weigh
// cost against completion risk.

// SpotMarket generates a deterministic hourly price path for one instance
// type.
type SpotMarket struct {
	OnDemand float64 // $ per node-hour (cc1.4xlarge was $1.60 in 2011)
	Mean     float64 // long-run spot mean, $/node-hour
	Floor    float64
	Sigma    float64 // hourly volatility, $
	SpikeP   float64 // probability of a demand spike in any hour
	SpikeMul float64 // spike price multiplier over on-demand

	seed uint64
}

// NewSpotMarket returns the 2011-era cc1.4xlarge market model: spot
// hovering around 35% of on-demand with occasional spikes above it.
func NewSpotMarket(seed uint64) *SpotMarket {
	return &SpotMarket{
		OnDemand: 1.60,
		Mean:     0.56,
		Floor:    0.30,
		Sigma:    0.08,
		SpikeP:   0.02,
		SpikeMul: 1.5,
		seed:     seed,
	}
}

// Price returns the spot price during hour h (deterministic in seed and
// h: the whole path up to h is replayed).
func (m *SpotMarket) Price(h int) float64 {
	if h < 0 {
		h = 0
	}
	rng := sim.NewRNG(m.seed).Derive(0x5907)
	p := m.Mean
	for i := 0; i <= h; i++ {
		// Mean reversion plus noise.
		p += 0.3*(m.Mean-p) + m.Sigma*rng.Normal()
		if rng.Float64() < m.SpikeP {
			p = m.OnDemand * m.SpikeMul * (1 + 0.3*rng.Float64())
		}
		if p < m.Floor {
			p = m.Floor
		}
	}
	return p
}

// SpotOutcome summarises one spot execution attempt.
type SpotOutcome struct {
	Completed     bool
	Interruptions int
	WallHours     float64 // submission to completion, including waits
	ComputeHours  float64 // billed node-hours
	ProgressHours float64 // surviving job progress, node-local hours
	Cost          float64 // spot bill, $
	OnDemandCost  float64 // what the same job costs on demand, $
	Savings       float64 // 1 - Cost/OnDemandCost (negative = more expensive)
}

// InterruptionPlan converts the price path against a bid into the fault
// plane's terms: one outage window per contiguous span of outbid hours,
// opening with a preemption of node 0 at the outage's first hour. Times
// are in hours. The MPI runtime and SpotRun both consume this
// representation, so the spot example and the simulated runtime can
// never disagree about when capacity was lost.
func (m *SpotMarket) InterruptionPlan(bid, maxHours float64) (*fault.Plan, error) {
	if bid <= 0 {
		return nil, fmt.Errorf("arrive: bid must be positive")
	}
	if maxHours < 0 {
		return nil, fmt.Errorf("arrive: maxHours must be non-negative")
	}
	if maxHours == 0 {
		maxHours = 24 * 14
	}
	p := &fault.Plan{}
	out := false
	for h := 0; float64(h) < maxHours; h++ {
		if m.Price(h) > bid {
			if !out {
				out = true
				p.Preemptions = append(p.Preemptions, fault.Preemption{Node: 0, At: float64(h)})
				p.Outages = append(p.Outages, fault.Outage{Start: float64(h), End: float64(h) + 1})
			} else {
				p.Outages[len(p.Outages)-1].End = float64(h) + 1
			}
		} else {
			out = false
		}
	}
	return p, nil
}

// SpotRun executes a job of `hours` node-hours-per-node duration on
// `nodes` spot instances with the given bid: the job runs in hours where
// the spot price is at or below the bid, is interrupted (losing progress
// back to the last checkpoint) when outbid, and resumes when the price
// recovers. checkpointHours of 0 means no checkpointing: every
// interruption restarts from zero. maxHours bounds the attempt (0 = two
// weeks). Negative checkpointHours or maxHours is an error.
func (m *SpotMarket) SpotRun(hours float64, nodes int, bid, checkpointHours, maxHours float64) (SpotOutcome, error) {
	if hours <= 0 || nodes <= 0 {
		return SpotOutcome{}, fmt.Errorf("arrive: spot job needs positive size")
	}
	if checkpointHours < 0 {
		return SpotOutcome{}, fmt.Errorf("arrive: checkpointHours must be non-negative")
	}
	if maxHours < 0 {
		return SpotOutcome{}, fmt.Errorf("arrive: maxHours must be non-negative")
	}
	plan, err := m.InterruptionPlan(bid, maxHours)
	if err != nil {
		return SpotOutcome{}, err
	}
	if maxHours == 0 {
		maxHours = 24 * 14
	}
	out := SpotOutcome{OnDemandCost: hours * float64(nodes) * m.OnDemand}

	// Interruption mechanics are delegated to the fault plane: the plan
	// says when capacity is lost, Progress does the checkpoint/rollback
	// arithmetic; this loop only bills the hours.
	prog := fault.Progress{Total: hours, Quantum: checkpointHours}
	running := false
	for h := 0; float64(h) < maxHours; h++ {
		if plan.OutageAt(float64(h)) {
			if running {
				running = false
				out.Interruptions++
				prog.Interrupt()
			}
			continue
		}
		running = true
		step := prog.Advance(1)
		out.ComputeHours += step * float64(nodes)
		out.Cost += step * float64(nodes) * m.Price(h)
		if checkpointHours > 0 {
			prog.Checkpoint()
		}
		if prog.Completed() {
			out.Completed = true
			out.WallHours = float64(h) + 1
			break
		}
	}
	if !out.Completed {
		out.WallHours = maxHours
	}
	out.ProgressHours = prog.Done
	if out.OnDemandCost > 0 {
		out.Savings = 1 - out.Cost/out.OnDemandCost
	}
	return out, nil
}

// BestBid sweeps candidate bids between the market floor and the
// on-demand price and returns the cheapest bid that completes the job
// within maxHours (falling back to the most reliable bid when none
// completes).
func (m *SpotMarket) BestBid(hours float64, nodes int, checkpointHours, maxHours float64) (float64, SpotOutcome, error) {
	bestBid := 0.0
	var best SpotOutcome
	found := false
	for bid := m.Floor; bid <= m.OnDemand*1.05; bid += 0.05 {
		out, err := m.SpotRun(hours, nodes, bid, checkpointHours, maxHours)
		if err != nil {
			return 0, SpotOutcome{}, err
		}
		better := false
		switch {
		case out.Completed && (!found || !best.Completed):
			better = true
		case out.Completed == best.Completed && out.Cost < best.Cost && found:
			better = out.Completed // only compare costs among completing bids
		case !found:
			better = true
		}
		if better {
			bestBid, best, found = bid, out, true
		}
	}
	if !found {
		return 0, SpotOutcome{}, fmt.Errorf("arrive: no viable bid")
	}
	return bestBid, best, nil
}
