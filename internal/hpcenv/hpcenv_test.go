package hpcenv

import (
	"strings"
	"testing"
)

// buildEnv installs and loads the standard stack on a host.
func buildEnv(t *testing.T, h Host, load ...string) Host {
	t.Helper()
	for _, m := range StandardModules() {
		if err := h.Env.Install(m); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range load {
		if err := h.Env.Load(name); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func TestModuleDependencyResolution(t *testing.T) {
	h := buildEnv(t, VayuHost(), "chaste-deps")
	loaded := strings.Join(h.Env.Loaded(), " ")
	for _, want := range []string{"intel-cc/11.1.046", "openmpi/1.4.3", "petsc/3.1", "chaste-deps/2.1"} {
		if !strings.Contains(loaded, want) {
			t.Fatalf("missing %q in loaded set %q", want, loaded)
		}
	}
	// Requirements must precede dependents.
	idx := func(s string) int { return strings.Index(loaded, s) }
	if idx("openmpi") > idx("petsc") {
		t.Fatal("openmpi must load before petsc")
	}
}

func TestLoadMissingModule(t *testing.T) {
	h := VayuHost()
	if err := h.Env.Load("nonexistent"); err == nil {
		t.Fatal("loading an uninstalled module should fail")
	}
}

func TestLoadIdempotent(t *testing.T) {
	h := buildEnv(t, VayuHost(), "openmpi", "openmpi")
	count := 0
	for _, k := range h.Env.Loaded() {
		if strings.HasPrefix(k, "openmpi/") {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("openmpi loaded %d times", count)
	}
}

func TestInstallValidation(t *testing.T) {
	e := NewEnvironment()
	if err := e.Install(Module{Name: "x"}); err == nil {
		t.Fatal("module without version should fail")
	}
}

func TestHostTunedBuildUsesSSE4(t *testing.T) {
	vayu := buildEnv(t, VayuHost(), "um-deps")
	icc := Compiler{Name: "ifort", Version: "11.1.072"}
	bin, err := icc.Build("um", vayu, BuildOptions{HostTuned: true, Modules: []string{"um-deps"}})
	if err != nil {
		t.Fatal(err)
	}
	if !bin.Needs.Has(SSE42) {
		t.Fatal("host-tuned build on Vayu should use SSE4.2")
	}
}

func TestBuildRequiresLoadedModules(t *testing.T) {
	vayu := buildEnv(t, VayuHost()) // nothing loaded
	icc := Compiler{Name: "icpc", Version: "11.1.046"}
	if _, err := icc.Build("chaste", vayu, BuildOptions{Modules: []string{"chaste-deps"}}); err == nil {
		t.Fatal("building against an unloaded module should fail")
	}
}

func TestSSE4BinaryFailsOnDCCGuest(t *testing.T) {
	// The paper's portability barrier: a Vayu-tuned binary dies on the
	// DCC guest whose virtual CPU masks SSE4.
	vayu := buildEnv(t, VayuHost(), "um-deps")
	icc := Compiler{Name: "ifort", Version: "11.1.072"}
	tuned, err := icc.Build("um", vayu, BuildOptions{HostTuned: true, Modules: []string{"um-deps"}})
	if err != nil {
		t.Fatal(err)
	}
	img := Package("hpc-env-v1", "CentOS 5.7", vayu, tuned)
	dep := Deploy(img, DCCHost())
	err = dep.Exec("um")
	if err == nil {
		t.Fatal("SSE4 binary must SIGILL on the DCC guest")
	}
	if !strings.Contains(err.Error(), "SIGILL") || !strings.Contains(err.Error(), "sse4") {
		t.Fatalf("error should explain the SIGILL: %v", err)
	}
	// The same image runs on EC2, whose HVM guests expose SSE4.
	if err := Deploy(img, EC2Host()).Exec("um"); err != nil {
		t.Fatalf("tuned binary should run on EC2: %v", err)
	}
}

func TestPortableBuildRunsEverywhere(t *testing.T) {
	// "...which can be avoided by the selection of suitable compilation
	// switches."
	vayu := buildEnv(t, VayuHost(), "um-deps", "chaste-deps")
	icc := Compiler{Name: "ifort", Version: "11.1.072"}
	portable, err := icc.Build("um", vayu, BuildOptions{Modules: []string{"um-deps"}})
	if err != nil {
		t.Fatal(err)
	}
	img := Package("hpc-env-v2", "CentOS 5.7", vayu, portable)
	for _, target := range []Host{DCCHost(), EC2Host(), VayuHost()} {
		if err := Deploy(img, target).Exec("um"); err != nil {
			t.Fatalf("portable binary failed on %s: %v", target.Name, err)
		}
	}
}

func TestImageEnvironmentIsolation(t *testing.T) {
	// The image carries a snapshot: later changes to the build host do
	// not affect deployed images, and missing modules are detected.
	vayu := buildEnv(t, VayuHost(), "openmpi")
	icc := Compiler{Name: "icpc", Version: "11.1.046"}
	bin, err := icc.Build("bench", vayu, BuildOptions{Modules: []string{"openmpi"}})
	if err != nil {
		t.Fatal(err)
	}
	img := Package("img", "CentOS 5.7", vayu, bin)
	// A second binary whose module was never loaded into the image.
	orphan := bin
	orphan.App = "orphan"
	orphan.Modules = []string{"petsc"}
	img.Binaries = append(img.Binaries, orphan)
	dep := Deploy(img, EC2Host())
	if err := dep.Exec("bench"); err != nil {
		t.Fatal(err)
	}
	if err := dep.Exec("orphan"); err == nil {
		t.Fatal("binary with unpackaged module should fail")
	}
	if err := dep.Exec("nosuch"); err == nil {
		t.Fatal("unknown binary should fail")
	}
}

func TestFeatureSetMissing(t *testing.T) {
	have := NewFeatureSet(SSE2, SSE3)
	need := NewFeatureSet(SSE2, SSE42, AVX)
	missing := have.Missing(need)
	if len(missing) != 2 || missing[0] != AVX || missing[1] != SSE42 {
		t.Fatalf("missing = %v", missing)
	}
}

func TestLaunchDeterministic(t *testing.T) {
	vayu := buildEnv(t, VayuHost(), "um-deps")
	img := Package("img", "CentOS 5.7", vayu)
	spec := DefaultLaunchSpec(4, img)
	a, err := Launch(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Launch(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.ElapsedSecs != b.ElapsedSecs || a.FailedBoots != b.FailedBoots {
		t.Fatal("launch not deterministic for a fixed seed")
	}
	if !a.Ready || a.Nodes != 4 {
		t.Fatalf("cluster not ready: %+v", a)
	}
	if a.ElapsedSecs < spec.BootMeanSeconds*0.7 {
		t.Fatalf("implausibly fast launch: %v", a.ElapsedSecs)
	}
}

func TestLaunchObservesBootFailures(t *testing.T) {
	vayu := buildEnv(t, VayuHost())
	img := Package("img", "CentOS 5.7", vayu)
	spec := DefaultLaunchSpec(8, img)
	spec.BootFailureProb = 0.5
	spec.MaxRetries = 10
	failures := 0
	for seed := uint64(0); seed < 10; seed++ {
		res, err := Launch(spec, seed)
		if err != nil {
			continue
		}
		failures += res.FailedBoots
	}
	if failures == 0 {
		t.Fatal("with 50% boot failure probability some instances must be replaced")
	}
}

func TestLaunchGivesUpAfterRetries(t *testing.T) {
	vayu := buildEnv(t, VayuHost())
	img := Package("img", "CentOS 5.7", vayu)
	spec := DefaultLaunchSpec(4, img)
	spec.BootFailureProb = 1.0 // nothing ever boots
	spec.MaxRetries = 2
	if _, err := Launch(spec, 1); err == nil {
		t.Fatal("certain boot failure should error out")
	}
}

func TestLaunchValidation(t *testing.T) {
	vayu := buildEnv(t, VayuHost())
	img := Package("img", "CentOS 5.7", vayu)
	if _, err := Launch(LaunchSpec{Nodes: 0, Image: img}, 1); err == nil {
		t.Fatal("zero nodes should fail")
	}
	if _, err := Launch(LaunchSpec{Nodes: 2}, 1); err == nil {
		t.Fatal("missing image should fail")
	}
}

func TestLaunchScalesConfigWithNodes(t *testing.T) {
	vayu := buildEnv(t, VayuHost())
	img := Package("img", "CentOS 5.7", vayu)
	small := DefaultLaunchSpec(2, img)
	small.BootFailureProb = 0
	big := DefaultLaunchSpec(32, img)
	big.BootFailureProb = 0
	a, err := Launch(small, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Launch(big, 3)
	if err != nil {
		t.Fatal(err)
	}
	if b.ElapsedSecs <= a.ElapsedSecs {
		t.Fatalf("larger clusters should take longer to configure: %v vs %v", b.ElapsedSecs, a.ElapsedSecs)
	}
}
