package hpcenv

import (
	"fmt"

	"repro/internal/sim"
)

// StarCluster-style cluster launching. The paper deployed its EC2 cluster
// with StarCluster ("automates the building, configuration and management
// of compute nodes"); the related work it cites (Jackson et al.) reports
// the operational reality of "images not booting up correctly" — this
// model includes those boot failures and the retry loop a launcher runs.

// LaunchSpec describes a cluster request.
type LaunchSpec struct {
	Nodes        int
	Image        *VMImage
	InstanceType string

	// BootMeanSeconds is the typical per-instance boot time.
	BootMeanSeconds float64
	// BootFailureProb is the chance an instance fails to boot and must be
	// replaced.
	BootFailureProb float64
	// MaxRetries bounds replacement attempts per node.
	MaxRetries int
}

// DefaultLaunchSpec returns 2011-era cc1.4xlarge behaviour.
func DefaultLaunchSpec(nodes int, img *VMImage) LaunchSpec {
	return LaunchSpec{
		Nodes:           nodes,
		Image:           img,
		InstanceType:    "cc1.4xlarge",
		BootMeanSeconds: 95,
		BootFailureProb: 0.06,
		MaxRetries:      3,
	}
}

// LaunchResult summarises a cluster launch.
type LaunchResult struct {
	Ready        bool
	Nodes        int
	FailedBoots  int     // instances replaced
	ElapsedSecs  float64 // wall time until the whole cluster is ready
	MasterConfig string  // NFS master role marker
}

// Launch boots the cluster deterministically under the given seed:
// instances boot in parallel, failures are retried, and the cluster is
// ready when every node is up and the shared NFS export is mounted.
func Launch(spec LaunchSpec, seed uint64) (LaunchResult, error) {
	if spec.Nodes <= 0 {
		return LaunchResult{}, fmt.Errorf("hpcenv: need at least one node")
	}
	if spec.Image == nil {
		return LaunchResult{}, fmt.Errorf("hpcenv: launch needs a VM image")
	}
	if spec.MaxRetries < 0 {
		return LaunchResult{}, fmt.Errorf("hpcenv: negative retry count")
	}
	rng := sim.NewRNG(seed).Derive(sim.SeedString("starcluster"))

	res := LaunchResult{Nodes: spec.Nodes}
	var slowest float64
	for n := 0; n < spec.Nodes; n++ {
		var nodeTime float64
		booted := false
		for attempt := 0; attempt <= spec.MaxRetries; attempt++ {
			boot := spec.BootMeanSeconds * (0.7 + 0.6*rng.Float64())
			nodeTime += boot
			if rng.Float64() >= spec.BootFailureProb {
				booted = true
				break
			}
			res.FailedBoots++
		}
		if !booted {
			res.ElapsedSecs = nodeTime
			return res, fmt.Errorf("hpcenv: node %d failed to boot after %d attempts", n, spec.MaxRetries+1)
		}
		if nodeTime > slowest {
			slowest = nodeTime
		}
	}
	// Post-boot configuration: NFS export from the master, hostfile and
	// key distribution — serial on the master.
	config := 20 + 2*float64(spec.Nodes)
	res.ElapsedSecs = slowest + config
	res.Ready = true
	res.MasterConfig = fmt.Sprintf("master exports /home and /apps to %d workers", spec.Nodes-1)
	return res, nil
}
