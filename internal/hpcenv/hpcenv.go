// Package hpcenv models the paper's central workflow claim: packaging a
// traditional HPC software environment (compilers, modules, runtimes,
// application binaries) into VM images that run unchanged on private and
// public clouds.
//
// It reproduces the one failure mode the paper hit — "the use of
// non-ubiquitous features such as SSE4 ... which can be avoided by the
// selection of suitable compilation switches": binaries built with
// host-tuned flags on Vayu use SSE4 instructions that the DCC guest's
// virtual CPU masks (VMware EVC-style feature masking), and die with an
// illegal-instruction fault unless rebuilt with portable switches.
package hpcenv

import (
	"fmt"
	"sort"
	"strings"
)

// Feature is an ISA capability flag (cpuid-style).
type Feature string

// The feature ladder relevant to the 2011-era Nehalem platforms.
const (
	SSE2  Feature = "sse2"
	SSE3  Feature = "sse3"
	SSSE3 Feature = "ssse3"
	SSE41 Feature = "sse4.1"
	SSE42 Feature = "sse4.2"
	AVX   Feature = "avx"
)

// FeatureSet is a set of ISA capabilities.
type FeatureSet map[Feature]bool

// NewFeatureSet builds a set from a list.
func NewFeatureSet(fs ...Feature) FeatureSet {
	s := FeatureSet{}
	for _, f := range fs {
		s[f] = true
	}
	return s
}

// Has reports whether f is present.
func (s FeatureSet) Has(f Feature) bool { return s[f] }

// Sorted returns the set's features in deterministic order.
func (s FeatureSet) Sorted() []Feature {
	out := make([]Feature, 0, len(s))
	for f := range s {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Missing returns the features of need absent from s, sorted.
func (s FeatureSet) Missing(need FeatureSet) []Feature {
	var out []Feature
	for f := range need {
		if !s[f] {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Module is one entry of the environment-modules tree under /apps.
type Module struct {
	Name     string
	Version  string
	Requires []string // module names that must be loaded first
}

// Key returns name/version.
func (m Module) Key() string { return m.Name + "/" + m.Version }

// Environment is a modules installation (the /apps directory plus the
// user's loaded set).
type Environment struct {
	installed map[string]Module // name -> module (one version visible)
	loaded    []string          // load order
	loadedSet map[string]bool
}

// NewEnvironment returns an empty environment.
func NewEnvironment() *Environment {
	return &Environment{installed: map[string]Module{}, loadedSet: map[string]bool{}}
}

// Install adds a module to /apps (replacing any previous version).
func (e *Environment) Install(m Module) error {
	if m.Name == "" || m.Version == "" {
		return fmt.Errorf("hpcenv: module needs name and version")
	}
	e.installed[m.Name] = m
	return nil
}

// Load activates a module and, recursively, its requirements.
func (e *Environment) Load(name string) error {
	if e.loadedSet[name] {
		return nil
	}
	m, ok := e.installed[name]
	if !ok {
		return fmt.Errorf("hpcenv: module %q not installed", name)
	}
	for _, req := range m.Requires {
		if err := e.Load(req); err != nil {
			return fmt.Errorf("hpcenv: loading %s: %w", name, err)
		}
	}
	e.loaded = append(e.loaded, name)
	e.loadedSet[name] = true
	return nil
}

// Loaded returns the loaded module keys in load order.
func (e *Environment) Loaded() []string {
	out := make([]string, 0, len(e.loaded))
	for _, name := range e.loaded {
		out = append(out, e.installed[name].Key())
	}
	return out
}

// Clone deep-copies the environment (the rsync into the VM image).
func (e *Environment) Clone() *Environment {
	c := NewEnvironment()
	for _, m := range e.installed {
		c.installed[m.Name] = m
	}
	c.loaded = append([]string(nil), e.loaded...)
	for k, v := range e.loadedSet {
		c.loadedSet[k] = v
	}
	return c
}

// Host is a machine (or VM guest) with a CPU feature set and an
// environment.
type Host struct {
	Name     string
	Features FeatureSet
	Env      *Environment
}

// Compiler builds application binaries.
type Compiler struct {
	Name    string
	Version string
}

// BuildOptions select the instruction target.
type BuildOptions struct {
	// HostTuned emits code for every feature of the build host (icc
	// -xHost); otherwise only Portable features are used.
	HostTuned bool
	// Portable is the baseline feature set for portable builds (defaults
	// to SSE2/SSE3 when nil).
	Portable FeatureSet
	// Modules the application links against at runtime.
	Modules []string
}

// Binary is a built application.
type Binary struct {
	App      string
	Compiler string
	Needs    FeatureSet // ISA features the code uses
	Modules  []string   // runtime module dependencies
	BuiltOn  string
}

// Build compiles app on the host.
func (c Compiler) Build(app string, host Host, opts BuildOptions) (Binary, error) {
	for _, m := range opts.Modules {
		if !host.Env.loadedSet[m] {
			return Binary{}, fmt.Errorf("hpcenv: building %s: module %q not loaded on %s", app, m, host.Name)
		}
	}
	needs := FeatureSet{}
	if opts.HostTuned {
		for f := range host.Features {
			needs[f] = true
		}
	} else {
		base := opts.Portable
		if base == nil {
			base = NewFeatureSet(SSE2, SSE3)
		}
		for _, f := range base.Sorted() {
			if !host.Features[f] {
				return Binary{}, fmt.Errorf("hpcenv: building %s: host %s lacks requested feature %s", app, host.Name, f)
			}
			needs[f] = true
		}
	}
	return Binary{
		App:      app,
		Compiler: c.Name + "/" + c.Version,
		Needs:    needs,
		Modules:  append([]string(nil), opts.Modules...),
		BuiltOn:  host.Name,
	}, nil
}

// VMImage packages binaries and their environment for cloud deployment.
type VMImage struct {
	Name     string
	BaseOS   string
	Binaries []Binary
	Env      *Environment
}

// Package snapshots the host environment and the given binaries into an
// image (the paper's rsync of /apps plus the home/project binaries).
func Package(name, baseOS string, host Host, bins ...Binary) *VMImage {
	return &VMImage{
		Name:     name,
		BaseOS:   baseOS,
		Binaries: append([]Binary(nil), bins...),
		Env:      host.Env.Clone(),
	}
}

// Deployment is an image instantiated on a target host.
type Deployment struct {
	Image  *VMImage
	Target Host
}

// Deploy boots the image on the target.
func Deploy(img *VMImage, target Host) *Deployment {
	return &Deployment{Image: img, Target: target}
}

// Exec validates that the named binary can run on the deployment's
// target: its ISA needs must be a subset of the guest CPU features (else
// SIGILL) and its module dependencies must be inside the image.
func (d *Deployment) Exec(app string) error {
	var bin *Binary
	for i := range d.Image.Binaries {
		if d.Image.Binaries[i].App == app {
			bin = &d.Image.Binaries[i]
			break
		}
	}
	if bin == nil {
		return fmt.Errorf("hpcenv: image %s has no binary %q", d.Image.Name, app)
	}
	if missing := d.Target.Features.Missing(bin.Needs); len(missing) > 0 {
		names := make([]string, len(missing))
		for i, f := range missing {
			names[i] = string(f)
		}
		return fmt.Errorf("hpcenv: %s: illegal instruction (SIGILL): binary built on %s uses %s but guest CPU of %s masks it",
			app, bin.BuiltOn, strings.Join(names, ","), d.Target.Name)
	}
	for _, m := range bin.Modules {
		if !d.Image.Env.loadedSet[m] {
			return fmt.Errorf("hpcenv: %s: cannot load shared library from module %q (not in image)", app, m)
		}
	}
	return nil
}

// Stock hosts for the three platforms.

// VayuHost returns the Vayu login/compute environment: full Nehalem ISA
// including SSE4, and the /apps module tree.
func VayuHost() Host {
	return Host{
		Name:     "vayu",
		Features: NewFeatureSet(SSE2, SSE3, SSSE3, SSE41, SSE42),
		Env:      NewEnvironment(),
	}
}

// DCCHost returns a DCC guest VM: the VMware cluster's EVC-style feature
// masking hides SSE4 from guests even though the E5520 silicon has it.
func DCCHost() Host {
	return Host{
		Name:     "dcc-guest",
		Features: NewFeatureSet(SSE2, SSE3, SSSE3),
		Env:      NewEnvironment(),
	}
}

// EC2Host returns a cc1.4xlarge guest: HVM instances expose the full
// Nehalem feature set.
func EC2Host() Host {
	return Host{
		Name:     "ec2-cc1.4xlarge",
		Features: NewFeatureSet(SSE2, SSE3, SSSE3, SSE41, SSE42),
		Env:      NewEnvironment(),
	}
}

// StandardModules returns the paper's software stack as modules.
func StandardModules() []Module {
	return []Module{
		{Name: "intel-cc", Version: "11.1.046"},
		{Name: "intel-fc", Version: "11.1.072"},
		{Name: "openmpi", Version: "1.4.3", Requires: []string{"intel-cc"}},
		{Name: "netcdf", Version: "4.1.1", Requires: []string{"intel-fc"}},
		{Name: "petsc", Version: "3.1", Requires: []string{"openmpi"}},
		{Name: "chaste-deps", Version: "2.1", Requires: []string{"petsc", "netcdf"}},
		{Name: "um-deps", Version: "7.8", Requires: []string{"openmpi", "netcdf"}},
	}
}
