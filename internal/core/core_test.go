package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/cpumodel"
	"repro/internal/mpi"
	"repro/internal/platform"
)

func TestExecuteBasic(t *testing.T) {
	out, err := Execute(RunSpec{Platform: platform.Vayu(), NP: 4}, func(c *mpi.Comm) error {
		c.Compute(cpumodel.Work{Flops: 1e9})
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Time() <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	if out.Profile == nil || out.Profile.NP != 4 {
		t.Fatal("profile missing or wrong size")
	}
	if out.Profile.Calls["Barrier"].Count != 4 {
		t.Fatalf("barrier count = %d", out.Profile.Calls["Barrier"].Count)
	}
}

func TestExecuteValidation(t *testing.T) {
	if _, err := Execute(RunSpec{NP: 4}, func(c *mpi.Comm) error { return nil }); err == nil {
		t.Fatal("nil platform should fail")
	}
	if _, err := Execute(RunSpec{Platform: platform.DCC(), NP: 1000}, func(c *mpi.Comm) error { return nil }); err == nil {
		t.Fatal("oversized job should fail")
	}
}

func TestExecuteMemoryDrivenNodes(t *testing.T) {
	// 8 ranks of 4 GB on EC2 (20 GB nodes) need 2 nodes; the placement
	// must spread them.
	out, err := Execute(RunSpec{
		Platform: platform.EC2(), NP: 8, MemPerRank: 4 << 30,
	}, func(c *mpi.Comm) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	_ = out
	nodes, err := AutoNodes(RunSpec{Platform: platform.EC2(), NP: 8, MemPerRank: 4 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if nodes < 2 {
		t.Fatalf("auto nodes = %d, want >= 2", nodes)
	}
}

func TestExecuteTimeout(t *testing.T) {
	_, err := Execute(RunSpec{
		Platform: platform.Vayu(), NP: 2, Timeout: 150 * time.Millisecond,
	}, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			c.RecvN(1, 0) // never sent
		}
		return nil
	})
	if err == nil {
		t.Fatal("deadlock should hit the timeout")
	}
}

func TestBestPicksMinimum(t *testing.T) {
	// With DCC jitter, different seeds give different times; Best must
	// return the minimum of the repetitions.
	spec := RunSpec{Platform: platform.DCC(), NP: 16}
	fn := func(c *mpi.Comm) error {
		for i := 0; i < 20; i++ {
			c.AllreduceN(8)
		}
		return nil
	}
	best, err := Best(spec, 5, fn)
	if err != nil {
		t.Fatal(err)
	}
	// Re-run each repetition seed and confirm none beats it.
	for r := 0; r < 5; r++ {
		s := spec
		s.Seed = uint64(r) * 0x9e3779b9
		out, err := Execute(s, fn)
		if err != nil {
			t.Fatal(err)
		}
		if out.Time() < best.Time()-1e-12 {
			t.Fatalf("repetition %d (%v) beats Best (%v)", r, out.Time(), best.Time())
		}
	}
}

func TestSpeedup(t *testing.T) {
	sp, err := Speedup(map[int]float64{8: 100, 16: 50, 32: 30}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sp[8] != 1 || sp[16] != 2 || math.Abs(sp[32]-100.0/30) > 1e-12 {
		t.Fatalf("speedups = %v", sp)
	}
	if _, err := Speedup(map[int]float64{16: 50}, 8); err == nil {
		t.Fatal("missing base should error")
	}
}

func TestNormalise(t *testing.T) {
	n, err := Normalise(map[string]float64{"dcc": 100, "vayu": 75}, "dcc")
	if err != nil {
		t.Fatal(err)
	}
	if n["dcc"] != 1 || n["vayu"] != 0.75 {
		t.Fatalf("normalised = %v", n)
	}
	if _, err := Normalise(map[string]float64{"vayu": 75}, "dcc"); err == nil {
		t.Fatal("missing reference should error")
	}
}

func TestExplicitNodesRespected(t *testing.T) {
	out, err := Execute(RunSpec{
		Platform: platform.EC2(), NP: 32, Nodes: 4,
	}, func(c *mpi.Comm) error {
		c.Compute(cpumodel.Work{Flops: 1e9})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	packed, err := Execute(RunSpec{
		Platform: platform.EC2(), NP: 32, Nodes: 2,
	}, func(c *mpi.Comm) error {
		c.Compute(cpumodel.Work{Flops: 1e9})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if packed.Time() <= out.Time() {
		t.Fatalf("2-node packed run (%v) should be slower than 4-node spread (%v)",
			packed.Time(), out.Time())
	}
	_ = cluster.Block
}
