// Package core is the public orchestration layer of the reproduction: it
// runs workloads on modelled platforms with placement control, IPM
// profiling and repetition (the paper repeats each run 5 times and takes
// the minimum), and provides the comparison helpers (speedups, normalised
// times, cross-platform ratios) used by every figure and table.
package core

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/ipm"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sim"
)

// ModelVersion identifies the calibration generation of the platform,
// network, CPU and I/O models. It is part of every artefact cache key
// (package sched), so bumping it invalidates all previously cached
// results at once. Bump it whenever any modelled constant or algorithm
// changes in a way that can alter an artefact's bytes.
const ModelVersion = "v1"

// RunSpec describes one job placement.
type RunSpec struct {
	Platform *platform.Platform
	NP       int
	Nodes    int            // 0 = minimum for the policy
	Policy   cluster.Policy // Block unless overridden
	// MemPerRank, when set, makes placement fail if nodes lack memory and
	// is used by AutoNodes to find the smallest feasible node count.
	MemPerRank int64
	Seed       uint64        // jitter stream offset (repetition index)
	Timeout    time.Duration // real-time guard; 0 = mpi default
	// Runtime selects the mpi execution engine (mpi.Goroutine, the
	// default, or mpi.PDES). Both produce byte-identical results; the
	// PDES engine is the one that scales to 10k+ virtual ranks.
	Runtime mpi.Runtime
	// EngineWorkers bounds PDES engine concurrency (0 = GOMAXPROCS).
	EngineWorkers int
	// ExtraTracer, when set, observes events alongside the IPM profiler
	// (e.g. a trace.Recorder exporting a Chrome timeline).
	ExtraTracer mpi.Tracer
	// Meter, when set, accumulates the virtual wall time of every run
	// executed under this spec (scheduler jobs use it for per-job
	// virtual-time accounting).
	Meter *sim.Meter
	// Metrics, when set, receives the mpi runtime's counters (sends,
	// payload bytes, wait states, pool traffic, fault/IO accounting).
	Metrics *obs.Registry
	// Faults, when set, injects the fault plan into the world. Without
	// Resilient, a preemption fails the run with mpi.ErrRankFailed.
	Faults *fault.Plan
	// Resilient runs the job under checkpoint/restart (mpi.RunResilient):
	// a preempted world restarts from the application's last durable
	// Checkpoint. With a nil/empty Faults plan the run is bit-identical
	// to a plain Execute.
	Resilient bool
	// RestartDelay and MaxRestarts tune the resilient loop (0 = defaults).
	RestartDelay float64
	MaxRestarts  int
}

// Outcome bundles the run result with its profile.
type Outcome struct {
	Result  *mpi.Result
	Profile *ipm.Profile
	// Resilience is set for Resilient runs (nil otherwise).
	Resilience *mpi.ResilientStats
}

// Time returns the job's virtual wall time.
func (o *Outcome) Time() float64 { return o.Result.Time }

// AutoNodes resolves the node count for the spec: the explicit Nodes if
// set, otherwise the smallest count that satisfies slots and memory.
func AutoNodes(spec RunSpec) (int, error) {
	if spec.Nodes > 0 {
		return spec.Nodes, nil
	}
	if spec.MemPerRank > 0 {
		return cluster.MinNodesFor(spec.Platform, spec.NP, spec.MemPerRank)
	}
	return 0, nil // let Place use its slot-based minimum
}

// Execute runs fn on the spec's placement with a profiler attached.
func Execute(spec RunSpec, fn func(c *mpi.Comm) error) (*Outcome, error) {
	if spec.Platform == nil {
		return nil, fmt.Errorf("core: spec needs a platform")
	}
	nodes, err := AutoNodes(spec)
	if err != nil {
		return nil, err
	}
	policy := spec.Policy
	if nodes > 0 && policy == cluster.Block {
		// An explicit or memory-driven node count distributes evenly.
		policy = cluster.Spread
	}
	pl, err := cluster.Place(spec.Platform, cluster.Spec{
		NP: spec.NP, Policy: policy, Nodes: nodes, MemPerRank: spec.MemPerRank,
	})
	if err != nil {
		return nil, err
	}
	prof := ipm.New(spec.NP)
	var tracer mpi.Tracer = prof
	if spec.ExtraTracer != nil {
		tracer = mpi.Tee(prof, spec.ExtraTracer)
	}
	opts := []mpi.Option{mpi.WithTracer(tracer), mpi.WithSeed(spec.Seed)}
	if spec.Runtime != mpi.Goroutine {
		opts = append(opts, mpi.WithRuntime(spec.Runtime))
	}
	if spec.EngineWorkers > 0 {
		opts = append(opts, mpi.WithEngineWorkers(spec.EngineWorkers))
	}
	if spec.Timeout > 0 {
		opts = append(opts, mpi.WithTimeout(spec.Timeout))
	}
	if spec.Faults != nil {
		opts = append(opts, mpi.WithFaults(spec.Faults))
	}
	if spec.Metrics != nil {
		opts = append(opts, mpi.WithMetrics(spec.Metrics))
	}
	w, err := mpi.NewWorld(spec.Platform, pl, opts...)
	if err != nil {
		return nil, err
	}
	if spec.Resilient {
		return executeResilient(spec, w, fn)
	}
	res, err := w.Run(fn)
	if err != nil {
		return nil, err
	}
	w.Release()
	spec.Meter.Add(res.Time)
	return &Outcome{Result: res, Profile: prof.Snapshot(res)}, nil
}

// executeResilient runs the world under checkpoint/restart. Each
// incarnation gets a fresh profiler so the surviving profile accounts
// only the completing attempt; lost work and restart overhead are folded
// in as the profiler's resilience columns.
func executeResilient(spec RunSpec, w *mpi.World, fn func(c *mpi.Comm) error) (*Outcome, error) {
	var prof *ipm.Profiler
	cfg := mpi.ResilientConfig{
		Plan:         spec.Faults,
		RestartDelay: spec.RestartDelay,
		MaxRestarts:  spec.MaxRestarts,
		NewTracer: func(incarnation int) mpi.Tracer {
			prof = ipm.New(spec.NP)
			if spec.ExtraTracer != nil {
				return mpi.Tee(prof, spec.ExtraTracer)
			}
			return prof
		},
	}
	res, stats, err := w.RunResilient(cfg, fn)
	if err != nil {
		return nil, err
	}
	w.Release()
	spec.Meter.Add(res.Time)
	pr := prof.Snapshot(res)
	pr.SetResilience(stats.Restarts, stats.Checkpoints, stats.LostWork, stats.RestartOverhead)
	return &Outcome{Result: res, Profile: pr, Resilience: stats}, nil
}

// Best runs the spec `reps` times with distinct seeds and returns the
// outcome with the minimum wall time — the paper's measurement protocol
// ("each run was repeated 5 times, with the minimum time being used").
func Best(spec RunSpec, reps int, fn func(c *mpi.Comm) error) (*Outcome, error) {
	if reps < 1 {
		reps = 1
	}
	var best *Outcome
	for r := 0; r < reps; r++ {
		s := spec
		s.Seed = spec.Seed + uint64(r)*0x9e3779b9
		out, err := Execute(s, fn)
		if err != nil {
			return nil, fmt.Errorf("core: repetition %d: %w", r, err)
		}
		if best == nil || out.Time() < best.Time() {
			best = out
		}
	}
	return best, nil
}

// Speedup converts a time series indexed by process count into speedups
// relative to the time at baseNP. Missing baseNP returns an error.
func Speedup(times map[int]float64, baseNP int) (map[int]float64, error) {
	base, ok := times[baseNP]
	if !ok || base <= 0 {
		return nil, fmt.Errorf("core: no valid base time at np=%d", baseNP)
	}
	out := make(map[int]float64, len(times))
	for np, t := range times {
		if t > 0 {
			out[np] = base / t
		}
	}
	return out, nil
}

// Normalise divides each platform's value by the reference platform's
// (Figure 3 normalises to DCC).
func Normalise(values map[string]float64, reference string) (map[string]float64, error) {
	ref, ok := values[reference]
	if !ok || ref <= 0 {
		return nil, fmt.Errorf("core: no valid reference value for %q", reference)
	}
	out := make(map[string]float64, len(values))
	for k, v := range values {
		out[k] = v / ref
	}
	return out, nil
}
