package mpi

import "repro/internal/obs"

// worldMetrics holds the observability handles of one world. The zero
// value (no registry attached) carries nil handles, and every obs method
// is a no-op on nil, so instrumented hot paths never branch on whether
// metrics are enabled.
//
// Deterministic metrics (counts, bytes, virtual-time nanoseconds rounded
// per event) register as stable; anything driven by real scheduling
// (sync.Pool reuse, inbox depth at delivery time) registers volatile and
// stays out of stable snapshots.
type worldMetrics struct {
	sends, recvs         *obs.Counter
	sendBytes, recvBytes *obs.Counter
	eager, rendezvous    *obs.Counter
	waitNS, queuedNS     *obs.Counter
	msgBytes             *obs.Histogram

	poolLease, poolMiss *obs.Counter   // volatile: sync.Pool reuse is scheduling-dependent
	inboxDepth          *obs.Histogram // volatile: depth at delivery depends on interleaving

	ranksLost         *obs.Counter
	restarts          *obs.Counter
	checkpoints       *obs.Counter
	lostWorkNS        *obs.Counter
	restartOverheadNS *obs.Counter

	ckptBytes     *obs.Counter
	commitStallNS *obs.Counter
}

func newWorldMetrics(r *obs.Registry) worldMetrics {
	return worldMetrics{
		sends:     r.Counter("mpi_sends_total", "point-to-point messages injected"),
		recvs:     r.Counter("mpi_recvs_total", "point-to-point messages received"),
		sendBytes: r.Counter("mpi_send_bytes_total", "modelled payload bytes sent"),
		recvBytes: r.Counter("mpi_recv_bytes_total", "modelled payload bytes received"),
		eager:     r.Counter("mpi_eager_total", "messages below the rendezvous threshold"),
		rendezvous: r.Counter("mpi_rendezvous_total",
			"messages at or above the rendezvous threshold"),
		waitNS: r.Counter("mpi_recv_wait_ns_total",
			"virtual ns receivers sat blocked before arrival (late sender)"),
		queuedNS: r.Counter("mpi_recv_queued_ns_total",
			"virtual ns messages sat unmatched before the receive (late receiver)"),
		msgBytes: r.Histogram("mpi_message_bytes", "payload size distribution"),
		poolLease: r.VolatileCounter("mpi_pool_leases_total",
			"message envelopes leased from the pool"),
		poolMiss: r.VolatileCounter("mpi_pool_misses_total",
			"leases that allocated a fresh envelope"),
		inboxDepth: r.VolatileHistogram("mpi_inbox_depth",
			"unmatched messages queued at delivery time"),
		ranksLost: r.Counter("fault_ranks_lost_total", "ranks killed by node preemptions"),
		restarts:  r.Counter("fault_restarts_total", "resilient-run restarts"),
		checkpoints: r.Counter("fault_checkpoints_total",
			"checkpoints committed by completing resilient runs"),
		lostWorkNS: r.Counter("fault_lost_work_ns_total",
			"virtual ns of per-rank progress discarded by restarts"),
		restartOverheadNS: r.Counter("fault_restart_overhead_ns_total",
			"virtual ns spent in restart delays"),
		ckptBytes: r.Counter("io_checkpoint_bytes_total", "checkpoint bytes written"),
		commitStallNS: r.Counter("io_commit_stall_ns_total",
			"virtual ns ranks stalled aligning to checkpoint commits"),
	}
}

// WithMetrics attaches an observability registry: the world registers
// its instruments there and meters message traffic, wait states, pool
// behaviour and fault/checkpoint activity as it runs. A nil registry
// changes nothing.
func WithMetrics(r *obs.Registry) Option {
	return func(w *World) {
		if r != nil {
			w.met = newWorldMetrics(r)
		}
	}
}
