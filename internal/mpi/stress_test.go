// Race stress: the scheduler runs whole simulated worlds concurrently,
// so nothing inside a world — rank goroutines, inboxes, virtual clocks,
// golden-reference maps — may share unsynchronized state with a sibling
// world. This external-package test (suite imports mpi) drives two
// 64-rank NPB skeletons at once and is most meaningful under
// `go test -race`, which tier-1 verification runs.
package mpi_test

import (
	"sync"
	"testing"

	"repro/internal/mpi"
	"repro/internal/npb"
	"repro/internal/npb/suite"
	"repro/internal/platform"
)

// skeleton64 runs one kernel's 64-rank class B skeleton and returns the
// maximum rank virtual time.
func skeleton64(t *testing.T, kernel string, p *platform.Platform) float64 {
	t.Helper()
	fn, err := suite.Skeleton(kernel)
	if err != nil {
		t.Error(err)
		return 0
	}
	res, err := mpi.RunOn(p, 64, func(c *mpi.Comm) error {
		return fn(c, npb.ClassB)
	})
	if err != nil {
		t.Errorf("%s skeleton: %v", kernel, err)
		return 0
	}
	return res.Time
}

// TestConcurrentWorldsStress runs two 64-rank NPB skeletons concurrently
// (CG on Vayu, FT on DCC — 128 rank goroutines live at once), twice, and
// asserts the virtual times are unaffected by the interleaving.
func TestConcurrentWorldsStress(t *testing.T) {
	type pair struct{ cg, ft float64 }
	round := func() pair {
		var p pair
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			p.cg = skeleton64(t, "cg", platform.Vayu())
		}()
		go func() {
			defer wg.Done()
			p.ft = skeleton64(t, "ft", platform.DCC())
		}()
		wg.Wait()
		return p
	}
	first := round()
	if first.cg <= 0 || first.ft <= 0 {
		t.Fatalf("virtual times not positive: %+v", first)
	}
	if second := round(); second != first {
		t.Fatalf("concurrent worlds not deterministic: %+v vs %+v", first, second)
	}
}

// TestConcurrentSameKernel runs the same kernel skeleton in four worlds
// at once — the scheduler's common case when fig4's panels regenerate in
// parallel — and asserts all four agree.
func TestConcurrentSameKernel(t *testing.T) {
	const n = 4
	times := make([]float64, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			defer wg.Done()
			times[i] = skeleton64(t, "mg", platform.EC2())
		}()
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if times[i] != times[0] {
			t.Fatalf("world %d time %v != world 0 time %v", i, times[i], times[0])
		}
	}
}
