package mpi

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cluster"
	"repro/internal/platform"
)

// run executes fn on np ranks of the given platform, failing the test on
// error.
func run(t *testing.T, p *platform.Platform, np int, fn func(c *Comm) error) *Result {
	t.Helper()
	res, err := RunOn(p, np, fn)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSendRecvDataIntegrity(t *testing.T) {
	run(t, platform.Vayu(), 2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1.5, 2.5, 3.5})
		} else {
			buf := make([]float64, 3)
			n := c.Recv(0, 7, buf)
			if n != 3 || buf[0] != 1.5 || buf[1] != 2.5 || buf[2] != 3.5 {
				return fmt.Errorf("got %v (n=%d)", buf, n)
			}
		}
		return nil
	})
}

func TestSendCopiesBuffer(t *testing.T) {
	run(t, platform.Vayu(), 2, func(c *Comm) error {
		if c.Rank() == 0 {
			data := []float64{42}
			c.Send(1, 0, data)
			data[0] = -1 // must not affect the in-flight message
		} else {
			buf := make([]float64, 1)
			c.Recv(0, 0, buf)
			if buf[0] != 42 {
				return fmt.Errorf("message corrupted by sender reuse: %v", buf[0])
			}
		}
		return nil
	})
}

func TestTagMatching(t *testing.T) {
	run(t, platform.Vayu(), 2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, []float64{1})
			c.Send(1, 2, []float64{2})
		} else {
			buf := make([]float64, 1)
			c.Recv(0, 2, buf) // out of order by tag
			if buf[0] != 2 {
				return fmt.Errorf("tag 2 got %v", buf[0])
			}
			c.Recv(0, 1, buf)
			if buf[0] != 1 {
				return fmt.Errorf("tag 1 got %v", buf[0])
			}
		}
		return nil
	})
}

func TestFIFOPerSourceAndTag(t *testing.T) {
	run(t, platform.Vayu(), 2, func(c *Comm) error {
		const k = 50
		if c.Rank() == 0 {
			for i := 0; i < k; i++ {
				c.Send(1, 3, []float64{float64(i)})
			}
		} else {
			buf := make([]float64, 1)
			for i := 0; i < k; i++ {
				c.Recv(0, 3, buf)
				if buf[0] != float64(i) {
					return fmt.Errorf("message %d arrived out of order: %v", i, buf[0])
				}
			}
		}
		return nil
	})
}

func TestIntAndComplexPayloads(t *testing.T) {
	run(t, platform.Vayu(), 2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.SendInts(1, 0, []int{9, 8})
			c.SendComplex(1, 1, []complex128{2 + 3i})
		} else {
			ib := make([]int, 2)
			c.RecvInts(0, 0, ib)
			if ib[0] != 9 || ib[1] != 8 {
				return fmt.Errorf("ints: %v", ib)
			}
			cb := make([]complex128, 1)
			c.RecvComplex(0, 1, cb)
			if cb[0] != 2+3i {
				return fmt.Errorf("complex: %v", cb)
			}
		}
		return nil
	})
}

func TestPhantomMessages(t *testing.T) {
	run(t, platform.DCC(), 2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.SendN(1, 0, 4096)
		} else {
			if n := c.RecvN(0, 0); n != 4096 {
				return fmt.Errorf("phantom size = %d", n)
			}
		}
		return nil
	})
}

func TestSelfSend(t *testing.T) {
	run(t, platform.Vayu(), 1, func(c *Comm) error {
		c.Send(0, 0, []float64{7})
		buf := make([]float64, 1)
		c.Recv(0, 0, buf)
		if buf[0] != 7 {
			return fmt.Errorf("self message got %v", buf[0])
		}
		return nil
	})
}

func TestSendrecvRing(t *testing.T) {
	const np = 8
	run(t, platform.Vayu(), np, func(c *Comm) error {
		right := (c.Rank() + 1) % np
		left := (c.Rank() - 1 + np) % np
		out := []float64{float64(c.Rank())}
		in := make([]float64, 1)
		c.Sendrecv(right, 5, out, left, 5, in)
		if in[0] != float64(left) {
			return fmt.Errorf("ring got %v, want %d", in[0], left)
		}
		return nil
	})
}

func TestNonblocking(t *testing.T) {
	run(t, platform.Vayu(), 2, func(c *Comm) error {
		if c.Rank() == 0 {
			reqs := make([]*Request, 10)
			for i := range reqs {
				reqs[i] = c.Isend(1, i, []float64{float64(i)})
			}
			c.Waitall(reqs...)
		} else {
			bufs := make([][]float64, 10)
			reqs := make([]*Request, 10)
			for i := range reqs {
				bufs[i] = make([]float64, 1)
				reqs[i] = c.Irecv(0, i, bufs[i])
			}
			c.Waitall(reqs...)
			for i, b := range bufs {
				if b[0] != float64(i) {
					return fmt.Errorf("irecv %d got %v", i, b[0])
				}
			}
		}
		return nil
	})
}

func TestWaitIdempotent(t *testing.T) {
	run(t, platform.Vayu(), 2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 0, []float64{1})
		} else {
			buf := make([]float64, 1)
			r := c.Irecv(0, 0, buf)
			n1 := c.Wait(r)
			n2 := c.Wait(r)
			if n1 != 1 || n2 != 1 {
				return fmt.Errorf("Wait returned %d then %d", n1, n2)
			}
		}
		return nil
	})
}

func TestBcast(t *testing.T) {
	for _, np := range []int{1, 2, 3, 4, 7, 8, 16} {
		np := np
		t.Run(fmt.Sprintf("np=%d", np), func(t *testing.T) {
			run(t, platform.Vayu(), np, func(c *Comm) error {
				data := make([]float64, 4)
				if c.Rank() == 2%np {
					for i := range data {
						data[i] = float64(i) + 0.5
					}
				}
				c.Bcast(2%np, data)
				for i := range data {
					if data[i] != float64(i)+0.5 {
						return fmt.Errorf("rank %d: bcast[%d] = %v", c.Rank(), i, data[i])
					}
				}
				return nil
			})
		})
	}
}

func TestReduce(t *testing.T) {
	for _, np := range []int{1, 2, 5, 8} {
		np := np
		t.Run(fmt.Sprintf("np=%d", np), func(t *testing.T) {
			run(t, platform.Vayu(), np, func(c *Comm) error {
				data := []float64{float64(c.Rank() + 1)}
				c.Reduce(Sum, 0, data)
				if c.Rank() == 0 {
					want := float64(np*(np+1)) / 2
					if data[0] != want {
						return fmt.Errorf("reduce sum = %v, want %v", data[0], want)
					}
				}
				return nil
			})
		})
	}
}

func TestAllreduceOps(t *testing.T) {
	for _, np := range []int{2, 4, 6, 8, 16} { // mix of pow2 and not
		for _, op := range []Op{Sum, Max, Min} {
			np, op := np, op
			t.Run(fmt.Sprintf("np=%d/%v", np, op), func(t *testing.T) {
				run(t, platform.Vayu(), np, func(c *Comm) error {
					data := []float64{float64(c.Rank() + 1), -float64(c.Rank())}
					c.Allreduce(op, data)
					var want0, want1 float64
					switch op {
					case Sum:
						want0, want1 = float64(np*(np+1))/2, -float64(np*(np-1))/2
					case Max:
						want0, want1 = float64(np), 0
					case Min:
						want0, want1 = 1, -float64(np-1)
					}
					if data[0] != want0 || data[1] != want1 {
						return fmt.Errorf("rank %d: allreduce(%v) = %v, want [%v %v]",
							c.Rank(), op, data, want0, want1)
					}
					return nil
				})
			})
		}
	}
}

func TestAllreduceInts(t *testing.T) {
	run(t, platform.Vayu(), 6, func(c *Comm) error {
		data := []int{c.Rank()}
		c.AllreduceInts(Sum, data)
		if data[0] != 15 {
			return fmt.Errorf("int allreduce = %d, want 15", data[0])
		}
		return nil
	})
}

func TestAllreduceMatchesSerialProperty(t *testing.T) {
	// Property: Allreduce(Sum) equals the serial sum for random vectors.
	prop := func(seed uint8, lenRaw uint8) bool {
		np := int(seed%7) + 2
		n := int(lenRaw%16) + 1
		vals := make([][]float64, np)
		for r := range vals {
			vals[r] = make([]float64, n)
			for i := range vals[r] {
				vals[r][i] = float64((int(seed)+r*31+i*7)%100) / 3
			}
		}
		want := make([]float64, n)
		for _, v := range vals {
			for i := range want {
				want[i] += v[i]
			}
		}
		ok := true
		_, err := RunOn(platform.Vayu(), np, func(c *Comm) error {
			data := append([]float64(nil), vals[c.Rank()]...)
			c.Allreduce(Sum, data)
			for i := range data {
				if diff := data[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
					ok = false
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestAllgather(t *testing.T) {
	for _, np := range []int{1, 3, 4, 8} {
		np := np
		t.Run(fmt.Sprintf("np=%d", np), func(t *testing.T) {
			run(t, platform.Vayu(), np, func(c *Comm) error {
				send := []float64{float64(c.Rank()), float64(c.Rank() * 10)}
				recv := make([]float64, 2*np)
				c.Allgather(send, recv)
				for r := 0; r < np; r++ {
					if recv[2*r] != float64(r) || recv[2*r+1] != float64(r*10) {
						return fmt.Errorf("rank %d: block %d = %v", c.Rank(), r, recv[2*r:2*r+2])
					}
				}
				return nil
			})
		})
	}
}

func TestAlltoall(t *testing.T) {
	for _, np := range []int{2, 3, 4, 8} {
		np := np
		t.Run(fmt.Sprintf("np=%d", np), func(t *testing.T) {
			run(t, platform.Vayu(), np, func(c *Comm) error {
				send := make([]float64, np)
				for d := range send {
					send[d] = float64(c.Rank()*100 + d)
				}
				recv := make([]float64, np)
				c.Alltoall(send, recv)
				for s := 0; s < np; s++ {
					if recv[s] != float64(s*100+c.Rank()) {
						return fmt.Errorf("rank %d: from %d got %v", c.Rank(), s, recv[s])
					}
				}
				return nil
			})
		})
	}
}

func TestAlltoallComplex(t *testing.T) {
	const np = 4
	run(t, platform.Vayu(), np, func(c *Comm) error {
		send := make([]complex128, np)
		for d := range send {
			send[d] = complex(float64(c.Rank()), float64(d))
		}
		recv := make([]complex128, np)
		c.AlltoallComplex(send, recv)
		for s := 0; s < np; s++ {
			if recv[s] != complex(float64(s), float64(c.Rank())) {
				return fmt.Errorf("rank %d: from %d got %v", c.Rank(), s, recv[s])
			}
		}
		return nil
	})
}

func TestGatherScatter(t *testing.T) {
	const np = 5
	run(t, platform.Vayu(), np, func(c *Comm) error {
		send := []float64{float64(c.Rank())}
		var recv []float64
		if c.Rank() == 1 {
			recv = make([]float64, np)
		}
		c.Gather(1, send, recv)
		if c.Rank() == 1 {
			for r := 0; r < np; r++ {
				if recv[r] != float64(r) {
					return fmt.Errorf("gather block %d = %v", r, recv[r])
				}
			}
		}
		// Scatter back doubled values.
		var src []float64
		if c.Rank() == 1 {
			src = make([]float64, np)
			for r := range src {
				src[r] = 2 * float64(r)
			}
		}
		out := make([]float64, 1)
		c.Scatter(1, src, out)
		if out[0] != 2*float64(c.Rank()) {
			return fmt.Errorf("scatter got %v", out[0])
		}
		return nil
	})
}

func TestBarrierSynchronisesClocks(t *testing.T) {
	// After a barrier every rank's clock must be >= the pre-barrier
	// maximum (no rank can leave before the slowest arrives).
	const np = 8
	maxBefore := make([]float64, np)
	after := make([]float64, np)
	run(t, platform.Vayu(), np, func(c *Comm) error {
		if c.Rank() == 3 {
			c.ComputeSeconds(1.0) // straggler
		}
		maxBefore[c.Rank()] = c.Clock()
		c.Barrier()
		after[c.Rank()] = c.Clock()
		return nil
	})
	var mx float64
	for _, v := range maxBefore {
		if v > mx {
			mx = v
		}
	}
	for r, v := range after {
		if v < mx {
			t.Fatalf("rank %d left the barrier at %v, before straggler arrived at %v", r, v, mx)
		}
	}
}

func TestPhantomCollectives(t *testing.T) {
	for _, np := range []int{2, 3, 4, 8, 12} {
		np := np
		t.Run(fmt.Sprintf("np=%d", np), func(t *testing.T) {
			run(t, platform.DCC(), np, func(c *Comm) error {
				c.AllreduceN(8)
				c.BcastN(0, 1024)
				c.AllgatherN(64)
				c.AlltoallN(256)
				c.GatherN(0, 128)
				c.Barrier()
				return nil
			})
		})
	}
}

func TestSplit(t *testing.T) {
	// Split 8 ranks into 2 groups by parity; verify ranks, sizes and that
	// collectives work inside the split.
	run(t, platform.Vayu(), 8, func(c *Comm) error {
		color := c.Rank() % 2
		sub := c.Split(color, c.Rank())
		if sub.Size() != 4 {
			return fmt.Errorf("sub size = %d", sub.Size())
		}
		if want := c.Rank() / 2; sub.Rank() != want {
			return fmt.Errorf("sub rank = %d, want %d", sub.Rank(), want)
		}
		data := []float64{float64(c.Rank())}
		sub.Allreduce(Sum, data)
		// Even ranks: 0+2+4+6=12; odd: 1+3+5+7=16.
		want := 12.0
		if color == 1 {
			want = 16
		}
		if data[0] != want {
			return fmt.Errorf("split allreduce = %v, want %v", data[0], want)
		}
		return nil
	})
}

func TestSplitKeyOrdering(t *testing.T) {
	run(t, platform.Vayu(), 4, func(c *Comm) error {
		// Reverse the order via keys.
		sub := c.Split(0, -c.Rank())
		if want := 3 - c.Rank(); sub.Rank() != want {
			return fmt.Errorf("rank %d: sub rank = %d, want %d", c.Rank(), sub.Rank(), want)
		}
		return nil
	})
}

func TestSplitContextIsolation(t *testing.T) {
	// Messages on a split communicator must not match receives on the
	// parent even with identical src/tag.
	run(t, platform.Vayu(), 2, func(c *Comm) error {
		sub := c.Split(0, c.Rank())
		if c.Rank() == 0 {
			sub.Send(1, 5, []float64{111})
			c.Send(1, 5, []float64{222})
		} else {
			buf := make([]float64, 1)
			c.Recv(0, 5, buf) // parent first: must get 222 despite arriving second
			if buf[0] != 222 {
				return fmt.Errorf("parent recv got %v, want 222", buf[0])
			}
			sub.Recv(0, 5, buf)
			if buf[0] != 111 {
				return fmt.Errorf("sub recv got %v, want 111", buf[0])
			}
		}
		return nil
	})
}

func TestMisusePanicsBecomeErrors(t *testing.T) {
	cases := map[string]func(c *Comm) error{
		"rank out of range": func(c *Comm) error {
			c.Send(99, 0, []float64{1})
			return nil
		},
		"negative tag": func(c *Comm) error {
			c.Send(0, -3, []float64{1})
			return nil
		},
		"truncation": func(c *Comm) error {
			if c.Rank() == 0 {
				c.Send(1, 0, []float64{1, 2, 3})
			} else {
				c.Recv(0, 0, make([]float64, 1))
			}
			return nil
		},
		"type mismatch": func(c *Comm) error {
			if c.Rank() == 0 {
				c.SendInts(1, 0, []int{1})
			} else {
				c.Recv(0, 0, make([]float64, 1))
			}
			return nil
		},
		"phantom mismatch": func(c *Comm) error {
			if c.Rank() == 0 {
				c.SendN(1, 0, 8)
			} else {
				c.Recv(0, 0, make([]float64, 1))
			}
			return nil
		},
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := RunOn(platform.Vayu(), 2, fn)
			if err == nil {
				t.Fatalf("%s should fail the run", name)
			}
			if !strings.Contains(err.Error(), "panicked") {
				t.Fatalf("error should report the panic, got: %v", err)
			}
		})
	}
}

func TestDeadlockTimesOut(t *testing.T) {
	pl, err := cluster.Place(platform.Vayu(), cluster.Spec{NP: 2})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(platform.Vayu(), pl, WithTimeout(200*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	_, err = w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Recv(1, 0, make([]float64, 1)) // never sent
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected deadlock timeout, got %v", err)
	}
}

func TestUserErrorPropagates(t *testing.T) {
	_, err := RunOn(platform.Vayu(), 4, func(c *Comm) error {
		if c.Rank() == 2 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "rank 2") {
		t.Fatalf("got %v", err)
	}
}
