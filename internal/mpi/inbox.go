package mpi

import "sync"

// AnySource and AnyTag are wildcard values for Recv matching. Receives
// using wildcards are matched in physical arrival order, which is not
// deterministic across runs; all workloads in this repository use explicit
// sources and tags, keeping every experiment bit-reproducible.
const (
	AnySource = -1
	AnyTag    = -1
)

// message is an in-flight point-to-point message.
type message struct {
	ctx    uint64 // communicator context id
	src    int    // world rank of sender
	tag    int
	data   any     // payload slice, or nil for a phantom (size-only) message
	bytes  int     // modelled payload size
	arrive float64 // virtual arrival time at the receiver
}

// inbox is one rank's unexpected-message queue with source/tag matching.
type inbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []*message
}

func newInbox() *inbox {
	b := &inbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// put enqueues a message and wakes matchers. Messages from one sender are
// enqueued in program order, giving per-(src,tag) FIFO matching.
func (b *inbox) put(m *message) {
	b.mu.Lock()
	b.queue = append(b.queue, m)
	b.mu.Unlock()
	b.cond.Broadcast()
}

// match blocks until a message matching (ctx, src, tag) is available,
// removes it from the queue and returns it. src/tag may be
// AnySource/AnyTag; the communicator context always matches exactly.
func (b *inbox) match(ctx uint64, src, tag int) *message {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		for i, m := range b.queue {
			if m.ctx == ctx && (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag) {
				b.queue = append(b.queue[:i], b.queue[i+1:]...)
				return m
			}
		}
		b.cond.Wait()
	}
}

// pending returns the number of queued, unmatched messages.
func (b *inbox) pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queue)
}
