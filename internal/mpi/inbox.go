package mpi

import "sync"

// AnySource and AnyTag are wildcard values for Recv matching. Receives
// using wildcards are matched in physical arrival order, which is not
// deterministic across runs; all workloads in this repository use explicit
// sources and tags, keeping every experiment bit-reproducible.
const (
	AnySource = -1
	AnyTag    = -1
)

// message is an in-flight point-to-point message. Envelopes (and the
// payload capacity they carry) are recycled through msgPool; see pool.go
// for the ownership rules.
type message struct {
	ctx  uint64 // communicator context id
	src  int    // world rank of sender
	tag  int
	kind payloadKind // which payload field is live (payloadNone: phantom)
	f64  []float64
	ints []int
	cplx []complex128

	bytes  int     // modelled payload size
	arrive float64 // virtual arrival time at the receiver
	seq    uint64  // per-inbox arrival stamp, orders wildcard matching
	fresh  bool    // set by the pool's allocator, cleared on lease: marks a pool miss
}

// bucketKey addresses one exact-match FIFO queue.
type bucketKey struct {
	ctx      uint64
	src, tag int
}

// bucket is one (ctx,src,tag) FIFO. head indexes the next message to
// match; the tail of msgs holds the queued ones. The backing array is
// retained across drains, so steady-state traffic enqueues without
// allocating.
type bucket struct {
	head int
	msgs []*message
}

// empty reports whether no message is queued.
func (q *bucket) empty() bool { return q.head == len(q.msgs) }

// push enqueues m, compacting the consumed prefix once it dominates the
// slice so a never-idle queue cannot grow without bound.
func (q *bucket) push(m *message) {
	if q.head > 32 && q.head*2 >= len(q.msgs) {
		n := copy(q.msgs, q.msgs[q.head:])
		for i := n; i < len(q.msgs); i++ {
			q.msgs[i] = nil
		}
		q.msgs = q.msgs[:n]
		q.head = 0
	}
	//lint:allow reprolint/allochot amortised growth; the consumed-prefix compaction above bounds the slice
	q.msgs = append(q.msgs, m)
}

// pop removes and returns the oldest queued message.
func (q *bucket) pop() *message {
	m := q.msgs[q.head]
	q.msgs[q.head] = nil // matched messages must not be retained
	q.head++
	if q.empty() {
		q.msgs = q.msgs[:0]
		q.head = 0
	}
	return m
}

// inbox is one rank's unexpected-message queue with source/tag matching,
// bucketed by exact (ctx,src,tag) so the common explicit receive is a map
// lookup plus a FIFO pop instead of a linear scan. Each inbox has exactly
// one consumer (its rank's goroutine), so at most one waiter with one
// match predicate exists at any time and a put can wake it with Signal.
type inbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	rank    int // world rank of the consumer (the PDES engine's proc id)
	buckets map[bucketKey]*bucket
	slab    []bucket // arena for bucket structs, amortises short-lived worlds
	npend   int      // queued, unmatched messages across all buckets
	seq     uint64   // next arrival stamp
	aborted bool     // set by World.abortAll once a failed world is quiescent

	// The blocked waiter's predicate, valid while waiting is true. A put
	// whose message satisfies it signals the consumer; one that cannot
	// match leaves it asleep. scored additionally records that the waiter
	// was counted as blocked on the fault plane's quiescence scoreboard
	// (fault-free worlds skip that world-global bookkeeping); clearing it
	// credits the waiter back to "running" atomically with delivery, so
	// the world can never look quiescent while a satisfiable receive is
	// pending.
	waiting    bool
	scored     bool
	wctx       uint64
	wsrc, wtag int
}

func newInbox() *inbox {
	b := &inbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// inboxPool recycles inboxes — and the bucket maps, bucket arenas and
// queue arrays hanging off them — across world lifetimes. Building and
// tearing down worlds is the artefact scheduler's steady state (the
// world-churn benchmark), and the inbox graph was most of its per-world
// allocation.
var inboxPool = sync.Pool{New: func() any { return newInbox() }}

// leaseInboxes returns np pooled inboxes wired to their rank indices.
func leaseInboxes(np int) []*inbox {
	boxes := make([]*inbox, np)
	for i := range boxes {
		b := inboxPool.Get().(*inbox)
		b.rank = i
		boxes[i] = b
	}
	return boxes
}

// releaseInboxes recycles clean inboxes; one still holding unmatched
// messages or unwound by an abort is shed to the GC instead, so a pooled
// inbox is always empty and quiescent when leased.
func releaseInboxes(boxes []*inbox) {
	for _, b := range boxes {
		if b != nil && b.reset() {
			inboxPool.Put(b)
		}
	}
}

// reset prepares a clean inbox for reuse, reporting false when it is not
// reusable. The bucket map and arena are retained: their queues are
// empty (npend == 0), and keeping them is the point of the pool.
func (b *inbox) reset() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.npend != 0 || b.aborted || b.waiting {
		return false
	}
	b.seq = 0
	b.scored = false
	b.wctx, b.wsrc, b.wtag = 0, 0, 0
	return true
}

func matches(m *message, ctx uint64, src, tag int) bool {
	return m.ctx == ctx && (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag)
}

// put enqueues a message and wakes the consumer only when the message can
// satisfy its pending receive. Messages from one sender are enqueued in
// program order, giving per-(src,tag) FIFO matching.
func (b *inbox) put(w *World, m *message) {
	b.mu.Lock()
	m.seq = b.seq
	b.seq++
	if b.buckets == nil {
		//lint:allow reprolint/allochot once per inbox lease; the map is retained by the inbox pool
		b.buckets = make(map[bucketKey]*bucket, 8)
	}
	k := bucketKey{ctx: m.ctx, src: m.src, tag: m.tag}
	q := b.buckets[k]
	if q == nil {
		if len(b.slab) == 0 {
			//lint:allow reprolint/allochot slab refill amortises bucket allocation 16x (churn budget covers it)
			b.slab = make([]bucket, 16)
		}
		q = &b.slab[0]
		b.slab = b.slab[1:]
		b.buckets[k] = q
	}
	q.push(m)
	b.npend++
	w.met.inboxDepth.Observe(int64(b.npend))
	if b.waiting && matches(m, b.wctx, b.wsrc, b.wtag) {
		b.waiting = false
		if b.scored {
			b.scored = false
			w.exitBlocked()
		}
		if eng := w.engine(); eng != nil {
			// The consumer is (or is about to be) parked in the engine;
			// schedule its resumption at the message's arrival time. Lock
			// order: inbox.mu, then the engine's mutex.
			eng.Wake(b.rank, m.arrive)
		} else {
			b.cond.Signal()
		}
	}
	b.mu.Unlock()
}

// take removes and returns the oldest message matching (ctx, src, tag),
// or nil. Exact receives hit their bucket directly; wildcard receives
// scan the (small) bucket map for the lowest arrival stamp, preserving
// the physical-arrival-order semantics of the pre-bucket queue. Caller
// holds b.mu.
func (b *inbox) take(ctx uint64, src, tag int) *message {
	if src != AnySource && tag != AnyTag {
		q := b.buckets[bucketKey{ctx: ctx, src: src, tag: tag}]
		if q == nil || q.empty() {
			return nil
		}
		b.npend--
		return q.pop()
	}
	var best *bucket
	for k, q := range b.buckets {
		if q.empty() || k.ctx != ctx {
			continue
		}
		if src != AnySource && k.src != src {
			continue
		}
		if tag != AnyTag && k.tag != tag {
			continue
		}
		if best == nil || q.msgs[q.head].seq < best.msgs[best.head].seq {
			best = q
		}
	}
	if best == nil {
		return nil
	}
	b.npend--
	return best.pop()
}

// match blocks until a message matching (ctx, src, tag) is available,
// removes it from its bucket and returns it. src/tag may be
// AnySource/AnyTag; the communicator context always matches exactly.
// now is the receiver's virtual clock at the blocking point; the PDES
// engine parks the rank at that time (the goroutine runtime ignores it).
//
// After a rank failure, a receive that can still be satisfied proceeds
// normally; match panics with abortPanic only once the world is
// quiescent (every surviving rank blocked on a receive no delivered or
// future message can satisfy, so none will ever complete). This
// "maximal progress" rule keeps post-failure state — in particular which
// checkpoints committed — deterministic: a rank is never aborted while
// any peer that could still send to it is runnable, so the set of
// completed operations is the unique maximal one (the message-passing
// program is a Kahn process network).
func (b *inbox) match(w *World, ctx uint64, src, tag int, now float64) *message {
	eng := w.engine()
	b.mu.Lock()
	for {
		if m := b.take(ctx, src, tag); m != nil {
			b.waiting = false
			if b.scored {
				// Defensive: a found match implies put already credited
				// this waiter, but keep the counts paired.
				b.scored = false
				w.exitBlocked()
			}
			b.mu.Unlock()
			return m
		}
		if b.aborted {
			b.waiting = false
			if b.scored {
				b.scored = false
				w.exitBlocked()
			}
			b.mu.Unlock()
			panic(abortPanic{})
		}
		b.waiting = true
		b.wctx, b.wsrc, b.wtag = ctx, src, tag
		// Without a fault plan no rank can die, so the world can never
		// need the quiescence test — skip the scoreboard bookkeeping
		// (a world-global mutex) on the fault-free fast path.
		if w.faults != nil && !b.scored {
			b.scored = true
			w.enterBlocked()
		}
		if eng != nil {
			// Park in the engine with the inbox unlocked: the waking
			// put must be able to take b.mu. A wake that lands between
			// the unlock and the Park is absorbed by the engine's
			// pending-wake flag, so the rank never sleeps through it.
			b.mu.Unlock()
			eng.Park(b.rank, now)
			b.mu.Lock()
			continue
		}
		b.cond.Wait()
	}
}

// pending returns the number of queued, unmatched messages: a counter
// maintained by put/take, so it stays O(1) over any number of buckets.
func (b *inbox) pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.npend
}

// pendingDebug returns the maintained counter alongside a brute-force
// recount over every bucket, both read under one lock acquisition (test
// hook for the counter invariant).
func (b *inbox) pendingDebug() (counter, brute int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, q := range b.buckets {
		brute += len(q.msgs) - q.head
	}
	return b.npend, brute
}
