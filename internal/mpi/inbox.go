package mpi

import "sync"

// AnySource and AnyTag are wildcard values for Recv matching. Receives
// using wildcards are matched in physical arrival order, which is not
// deterministic across runs; all workloads in this repository use explicit
// sources and tags, keeping every experiment bit-reproducible.
const (
	AnySource = -1
	AnyTag    = -1
)

// message is an in-flight point-to-point message.
type message struct {
	ctx    uint64 // communicator context id
	src    int    // world rank of sender
	tag    int
	data   any     // payload slice, or nil for a phantom (size-only) message
	bytes  int     // modelled payload size
	arrive float64 // virtual arrival time at the receiver
}

// inbox is one rank's unexpected-message queue with source/tag matching.
// Each inbox has exactly one consumer (its rank's goroutine), so at most
// one waiter with one match predicate exists at any time.
type inbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*message
	aborted bool // set by World.abortAll once a failed world is quiescent

	// The blocked waiter's predicate, valid while waiting is true. A put
	// whose message satisfies it credits the waiter back to "running" on
	// the scoreboard atomically with delivery, so the world can never
	// look quiescent while a satisfiable receive is pending.
	waiting    bool
	wctx       uint64
	wsrc, wtag int
}

func newInbox() *inbox {
	b := &inbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func matches(m *message, ctx uint64, src, tag int) bool {
	return m.ctx == ctx && (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag)
}

// put enqueues a message and wakes matchers. Messages from one sender are
// enqueued in program order, giving per-(src,tag) FIFO matching.
func (b *inbox) put(w *World, m *message) {
	b.mu.Lock()
	b.queue = append(b.queue, m)
	if b.waiting && matches(m, b.wctx, b.wsrc, b.wtag) {
		b.waiting = false
		w.exitBlocked()
	}
	b.mu.Unlock()
	b.cond.Broadcast()
}

// match blocks until a message matching (ctx, src, tag) is available,
// removes it from the queue and returns it. src/tag may be
// AnySource/AnyTag; the communicator context always matches exactly.
//
// After a rank failure, a receive that can still be satisfied proceeds
// normally; match panics with abortPanic only once the world is
// quiescent (every surviving rank blocked on a receive no delivered or
// future message can satisfy, so none will ever complete). This
// "maximal progress" rule keeps post-failure state — in particular which
// checkpoints committed — deterministic: a rank is never aborted while
// any peer that could still send to it is runnable, so the set of
// completed operations is the unique maximal one (the message-passing
// program is a Kahn process network).
func (b *inbox) match(w *World, ctx uint64, src, tag int) *message {
	b.mu.Lock()
	for {
		for i, m := range b.queue {
			if matches(m, ctx, src, tag) {
				b.queue = append(b.queue[:i], b.queue[i+1:]...)
				if b.waiting {
					// Defensive: a found match implies put already
					// credited this waiter, but keep the counts paired.
					b.waiting = false
					w.exitBlocked()
				}
				b.mu.Unlock()
				return m
			}
		}
		if b.aborted {
			if b.waiting {
				b.waiting = false
				w.exitBlocked()
			}
			b.mu.Unlock()
			panic(abortPanic{})
		}
		// Without a fault plan no rank can die, so the world can never
		// need the quiescence test — skip the scoreboard bookkeeping
		// (a world-global mutex) on the fault-free fast path.
		if w.faults != nil && !b.waiting {
			b.waiting = true
			b.wctx, b.wsrc, b.wtag = ctx, src, tag
			w.enterBlocked()
		}
		b.cond.Wait()
	}
}

// pending returns the number of queued, unmatched messages.
func (b *inbox) pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queue)
}
