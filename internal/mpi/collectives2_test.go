package mpi

import (
	"fmt"
	"testing"

	"repro/internal/platform"
)

func TestAlltoallv(t *testing.T) {
	// Rank r sends r+1 elements (value 100r+d) to each destination d.
	const np = 4
	run(t, platform.Vayu(), np, func(c *Comm) error {
		r := c.Rank()
		sendCounts := make([]int, np)
		recvCounts := make([]int, np)
		var send []float64
		for d := 0; d < np; d++ {
			sendCounts[d] = r + 1
			for k := 0; k < r+1; k++ {
				send = append(send, float64(100*r+d))
			}
		}
		total := 0
		for s := 0; s < np; s++ {
			recvCounts[s] = s + 1
			total += s + 1
		}
		recv := make([]float64, total)
		c.Alltoallv(send, sendCounts, recv, recvCounts)
		off := 0
		for s := 0; s < np; s++ {
			for k := 0; k < s+1; k++ {
				if recv[off] != float64(100*s+r) {
					return fmt.Errorf("rank %d: from %d got %v, want %v", r, s, recv[off], 100*s+r)
				}
				off++
			}
		}
		return nil
	})
}

func TestAlltoallvCountMismatchPanics(t *testing.T) {
	_, err := RunOn(platform.Vayu(), 2, func(c *Comm) error {
		send := []float64{1, 2}
		recv := make([]float64, 2)
		// Wrong recvCounts: rank claims to expect 2 from each but peers
		// send 1.
		c.Alltoallv(send, []int{1, 1}, recv, []int{2, 2})
		return nil
	})
	if err == nil {
		t.Fatal("count mismatch should fail the run")
	}
}

func TestAlltoallvN(t *testing.T) {
	const np = 5
	run(t, platform.DCC(), np, func(c *Comm) error {
		sendBytes := make([]int, np)
		for d := 0; d < np; d++ {
			sendBytes[d] = 100 * (c.Rank() + 1)
		}
		got := c.AlltoallvN(sendBytes)
		for s := 0; s < np; s++ {
			if got[s] != 100*(s+1) {
				return fmt.Errorf("rank %d: from %d got %d bytes, want %d", c.Rank(), s, got[s], 100*(s+1))
			}
		}
		return nil
	})
}

func TestReduceScatterBlock(t *testing.T) {
	const np = 4
	run(t, platform.Vayu(), np, func(c *Comm) error {
		// data[p*n] where each rank contributes its rank value everywhere.
		data := make([]float64, np*2)
		for i := range data {
			data[i] = float64(c.Rank())
		}
		recv := make([]float64, 2)
		c.ReduceScatterBlock(Sum, data, recv)
		want := float64(np*(np-1)) / 2 // 0+1+2+3
		if recv[0] != want || recv[1] != want {
			return fmt.Errorf("rank %d: recv=%v, want %v", c.Rank(), recv, want)
		}
		return nil
	})
}

func TestScan(t *testing.T) {
	const np = 6
	run(t, platform.Vayu(), np, func(c *Comm) error {
		data := []float64{float64(c.Rank() + 1)}
		c.Scan(Sum, data)
		want := float64((c.Rank() + 1) * (c.Rank() + 2) / 2)
		if data[0] != want {
			return fmt.Errorf("rank %d: scan=%v, want %v", c.Rank(), data[0], want)
		}
		return nil
	})
}

func TestExscan(t *testing.T) {
	const np = 5
	run(t, platform.Vayu(), np, func(c *Comm) error {
		data := []float64{float64(c.Rank() + 1)}
		c.Exscan(Sum, data)
		want := float64(c.Rank() * (c.Rank() + 1) / 2) // sum of 1..rank
		if data[0] != want {
			return fmt.Errorf("rank %d: exscan=%v, want %v", c.Rank(), data[0], want)
		}
		return nil
	})
}

func TestScanSingleRank(t *testing.T) {
	run(t, platform.Vayu(), 1, func(c *Comm) error {
		data := []float64{7}
		c.Scan(Sum, data)
		if data[0] != 7 {
			return fmt.Errorf("scan on 1 rank changed data: %v", data[0])
		}
		c.Exscan(Sum, data)
		if data[0] != 0 {
			return fmt.Errorf("exscan on 1 rank should zero: %v", data[0])
		}
		return nil
	})
}

func TestMaxMinOpsOnInts(t *testing.T) {
	var dst, src = []int{3, -2}, []int{1, 5}
	Max.combineInts(dst, src)
	if dst[0] != 3 || dst[1] != 5 {
		t.Fatalf("max = %v", dst)
	}
	dst = []int{3, -2}
	Min.combineInts(dst, src)
	if dst[0] != 1 || dst[1] != -2 {
		t.Fatalf("min = %v", dst)
	}
}

func TestOpString(t *testing.T) {
	if Sum.String() != "sum" || Max.String() != "max" || Min.String() != "min" {
		t.Fatal("op names wrong")
	}
	if Op(42).String() == "" {
		t.Fatal("unknown op should render")
	}
}
