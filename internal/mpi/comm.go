package mpi

import (
	"fmt"
	"math"

	"repro/internal/cpumodel"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// rankState is the per-rank execution state shared by every communicator
// handle of that rank (the virtual clock must not fork across Split).
type rankState struct {
	world *World
	wrank int // world rank
	clock float64
	rng   *sim.RNG

	commTime    float64
	computeTime float64
	ioTime      float64

	// Wait-state accumulators for the call in flight: recvRaw adds to
	// them, record() stamps them onto the CallRecord and resets, so a
	// collective aggregates the waits of its (quiet) inner receives.
	waitAcc   float64
	queuedAcc float64
	maxWait   float64
	waitPeer  int // world rank of the largest single wait; -1 = none

	region string
	quiet  int  // >0 suppresses tracing/accounting of nested operations
	solo   bool // single-communicator phase: sender owns the whole NIC

	deathAt   float64             // preemption time of this rank's node (+Inf: none)
	throttles []cpumodel.Throttle // straggler windows from the fault plan
}

// Comm is one rank's handle on a communicator. The zero value is not
// usable; communicators are created by World.Run and Comm.Split.
type Comm struct {
	st      *rankState
	ctx     uint64 // communicator context id, isolates message matching
	rank    int    // rank within this communicator
	group   []int  // communicator rank -> world rank
	nsplits int    // split generation counter for context derivation
}

// initComm initialises one rank's communicator handle and execution
// state in place. World.Run carves both out of contiguous slabs, so a
// world's per-rank state costs O(1) allocations, not O(np).
func initComm(c *Comm, st *rankState, w *World, rank int, group []int) {
	*st = rankState{
		world:    w,
		wrank:    rank,
		clock:    w.incStart,
		rng:      sim.NewRNG(w.Platform.Seed ^ w.seed).Derive(uint64(rank) + 1),
		deathAt:  math.Inf(1),
		waitPeer: -1,
	}
	if w.faults != nil {
		if at, ok := w.faults.NodeDeath(w.Placement.NodeOf[rank], w.incStart); ok {
			st.deathAt = at
		}
		st.throttles = w.faults.ThrottlesFor(rank)
	}
	*c = Comm{st: st, ctx: 1, rank: rank, group: group}
}

// killPanic aborts the current rank at its scheduled preemption time;
// abortPanic unwinds a surviving rank once a failed world is quiescent.
// Both are recovered by World.Run.
type (
	killPanic  struct{}
	abortPanic struct{}
)

// maybeDie kills this rank if its virtual clock has reached the node's
// scheduled preemption. Checked at every operation boundary, so a rank
// dies at the first quantum after the fault fires — deterministically,
// because the clock itself is deterministic.
func (c *Comm) maybeDie() {
	st := c.st
	if st.clock >= st.deathAt {
		st.clock = st.deathAt
		st.world.markFailed(st.wrank, st.world.Placement.NodeOf[st.wrank], st.deathAt)
		panic(killPanic{})
	}
}

// Rank returns this rank's index within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// WorldRank returns this rank's index in the world communicator.
func (c *Comm) WorldRank() int { return c.st.wrank }

// Clock returns the rank's current virtual time in seconds.
func (c *Comm) Clock() float64 { return c.st.clock }

// CommTime returns the accumulated virtual seconds spent in communication.
func (c *Comm) CommTime() float64 { return c.st.commTime }

// ComputeTime returns the accumulated virtual seconds charged as computation.
func (c *Comm) ComputeTime() float64 { return c.st.computeTime }

// IOTime returns the accumulated virtual seconds charged as file I/O.
func (c *Comm) IOTime() float64 { return c.st.ioTime }

// RNG returns this rank's deterministic random stream (for workload
// generation that must differ by rank but stay reproducible).
func (c *Comm) RNG() *sim.RNG { return c.st.rng }

// SetSolo marks a phase in which effectively one rank communicates at a
// time (e.g. a startup scatter from rank 0 while everyone else waits), so
// the sender is not charged NIC contention from its idle node-mates. The
// static contention model otherwise assumes bulk-synchronous phases where
// all co-located ranks transmit concurrently.
func (c *Comm) SetSolo(on bool) { c.st.solo = on }

// Region switches the active profiling region label recorded with
// subsequent operations (IPM's MPI_Pcontrol sections).
func (c *Comm) Region(name string) {
	c.st.region = name
	if t := c.st.world.tracer; t != nil {
		t.Region(c.st.wrank, name, c.st.clock)
	}
}

// contention returns this rank's CPU contention context.
func (c *Comm) contention() cpumodel.Context {
	pl := c.st.world.Placement
	return cpumodel.Context{
		RanksOnNode: pl.RanksPerNode[pl.NodeOf[c.st.wrank]],
		NUMAPinned:  c.st.world.Platform.NUMAPinned,
	}
}

// Compute charges the modelled cost of w to this rank's clock, including
// the platform's compute jitter.
func (c *Comm) Compute(w cpumodel.Work) {
	p := c.st.world.Platform
	secs := p.CPU.Seconds(w, c.contention()) * p.ComputeOverhead
	secs = p.ComputeJitter.Apply(c.st.rng, secs)
	c.advance("compute", secs)
}

// ComputeSeconds charges raw virtual seconds of computation (no jitter,
// no CPU scaling); used for calibrated fixed costs.
func (c *Comm) ComputeSeconds(secs float64) { c.advance("compute", secs) }

// ReadShared charges the cost of reading n bytes from the platform's
// shared filesystem while `readers` ranks read concurrently.
func (c *Comm) ReadShared(n int64, readers int) {
	c.advance("io", c.st.world.Platform.FS.ReadSeconds(n, readers))
}

// WriteShared charges the cost of writing n bytes to the shared filesystem
// while `writers` ranks write concurrently.
func (c *Comm) WriteShared(n int64, writers int) {
	c.advance("io", c.st.world.Platform.FS.WriteSeconds(n, writers))
}

func (c *Comm) advance(kind string, secs float64) {
	if secs < 0 {
		panic(fmt.Sprintf("mpi: negative %s advance %g", kind, secs))
	}
	c.maybeDie()
	if kind == "compute" && len(c.st.throttles) > 0 {
		secs = cpumodel.StretchSeconds(secs, c.st.clock, c.st.throttles)
	}
	start := c.st.clock
	c.st.clock += secs
	switch kind {
	case "compute":
		c.st.computeTime += secs
	case "io":
		c.st.ioTime += secs
	}
	if t := c.st.world.tracer; t != nil && c.st.quiet == 0 {
		//lint:allow reprolint/allochot tracer is nil unless tracing is enabled; traced runs accept the cost
		t.Advance(c.st.wrank, kind, start, secs)
	}
}

// record accounts a completed communication call that began at start.
// The wait-state accumulators reset only here, on the non-quiet path, so
// the receives inside a collective roll up into one record.
func (c *Comm) record(name string, bytes int, start float64) {
	st := c.st
	if st.quiet > 0 {
		return
	}
	dur := st.clock - start
	st.commTime += dur
	if t := st.world.tracer; t != nil {
		//lint:allow reprolint/allochot tracer is nil unless tracing is enabled; traced runs accept the cost
		t.Call(st.wrank, CallRecord{
			Name: name, Bytes: bytes, Start: start, Dur: dur, Region: st.region,
			Wait: st.waitAcc, Queued: st.queuedAcc, Peer: st.waitPeer,
		})
	}
	st.waitAcc, st.queuedAcc, st.maxWait = 0, 0, 0
	st.waitPeer = -1
}

// link returns the transport between two world ranks.
func (w *World) link(a, b int) *netmodel.Link {
	return w.Platform.Link(w.Placement.NodeOf[a], w.Placement.NodeOf[b])
}

// nicShare returns the NIC bandwidth-sharing factor for a message between
// two world ranks: inter-node messages contend with the other ranks on the
// busier endpoint node (bulk-synchronous codes communicate simultaneously);
// intra-node transfers do not cross the NIC.
func (w *World) nicShare(a, b int) float64 {
	na, nb := w.Placement.NodeOf[a], w.Placement.NodeOf[b]
	if na == nb {
		return 1
	}
	ra, rb := w.Placement.RanksPerNode[na], w.Placement.RanksPerNode[nb]
	if rb > ra {
		ra = rb
	}
	return float64(ra)
}

func (c *Comm) checkRank(r int, what string) {
	if r < 0 || r >= len(c.group) {
		panic(fmt.Sprintf("mpi: %s rank %d out of range [0,%d)", what, r, len(c.group)))
	}
}

// sendMsg injects the (caller-filled) envelope m towards communicator
// rank dst and returns the call start time. Ownership of m transfers to
// the receiving rank at put; the caller must not touch it afterwards.
func (c *Comm) sendMsg(dst, tag int, m *message, bytes int) float64 {
	c.checkRank(dst, "destination")
	if bytes < 0 {
		panic("mpi: negative message size")
	}
	if tag < 0 {
		panic(fmt.Sprintf("mpi: negative tag %d", tag))
	}
	c.maybeDie()
	start := c.st.clock
	w := c.st.world
	wdst := c.group[dst]
	link := w.link(c.st.wrank, wdst)
	share := w.nicShare(c.st.wrank, wdst)
	if c.st.solo {
		share = 1
	}
	if w.faults != nil && w.Placement.NodeOf[c.st.wrank] != w.Placement.NodeOf[wdst] {
		// Inter-node transfers feel the fault plan's link degradation
		// windows; intra-node copies never cross the degraded fabric.
		if lf, bf := w.faults.DegradationAt(start); lf > 1 || bf > 1 {
			dl := link.Degraded(lf, bf)
			link = &dl
		}
	}
	busy, delay := link.TransferShared(c.st.rng, bytes, share)
	c.st.clock += busy
	m.ctx, m.src, m.tag = c.ctx, c.st.wrank, tag
	m.bytes, m.arrive = bytes, start+delay
	w.met.sends.Inc()
	w.met.sendBytes.Add(int64(bytes))
	w.met.msgBytes.Observe(int64(bytes))
	if rv := RendezvousBytes(); rv > 0 && int64(bytes) >= rv {
		w.met.rendezvous.Inc()
	} else {
		w.met.eager.Inc()
	}
	w.inboxes[wdst].put(w, m)
	return start
}

// leaseMessage leases a pooled envelope on behalf of this rank's world,
// metering pool traffic.
func (c *Comm) leaseMessage() *message {
	m, fresh := newMessage()
	met := &c.st.world.met
	met.poolLease.Inc()
	if fresh {
		met.poolMiss.Inc()
	}
	return m
}

// sendPhantom leases an envelope for an n-byte size-only message and
// injects it.
func (c *Comm) sendPhantom(dst, tag, n int) float64 {
	m := c.leaseMessage()
	m.kind = payloadNone
	return c.sendMsg(dst, tag, m, n)
}

// sendF64 leases an envelope, copies data into its pooled payload buffer
// and injects it. The copy is the only per-message data movement on the
// send side; the buffer itself is recycled when the receiver completes.
func (c *Comm) sendF64(dst, tag int, data []float64) float64 {
	m := c.leaseMessage()
	m.kind = payloadF64
	m.f64 = grownF64(m.f64, len(data))
	copy(m.f64, data)
	return c.sendMsg(dst, tag, m, 8*len(data))
}

// recvRaw blocks for a matching message, advances the clock to its arrival
// and returns it. src may be AnySource.
func (c *Comm) recvRaw(src, tag int) *message {
	c.maybeDie()
	wsrc := AnySource
	if src != AnySource {
		c.checkRank(src, "source")
		wsrc = c.group[src]
	}
	m := c.st.world.inboxes[c.st.wrank].match(c.st.world, c.ctx, wsrc, tag, c.st.clock)
	link := c.st.world.link(m.src, c.st.wrank)
	st := c.st
	met := &st.world.met
	met.recvs.Inc()
	met.recvBytes.Add(int64(m.bytes))
	// Classify the wait state before advancing the clock: arrival after
	// the receive entry is late-sender blocked time, arrival before it
	// means the message sat queued (late receiver). Neither changes any
	// clock value the model already computed.
	if m.arrive > st.clock {
		wait := m.arrive - st.clock
		st.waitAcc += wait
		if wait > st.maxWait {
			st.maxWait = wait
			st.waitPeer = m.src
		}
		met.waitNS.AddSeconds(wait)
		st.clock = m.arrive
	} else if m.arrive < st.clock {
		queued := st.clock - m.arrive
		st.queuedAcc += queued
		met.queuedNS.AddSeconds(queued)
	}
	st.clock += link.RecvOverhead
	return m
}

// Send transmits data to communicator rank dst with the given tag,
// blocking (in virtual time) for the eager injection cost. The slice is
// copied (into a pooled payload buffer), so the caller may reuse it
// immediately.
func (c *Comm) Send(dst, tag int, data []float64) {
	start := c.sendF64(dst, tag, data)
	c.record("Send", 8*len(data), start)
}

// SendInts transmits an int slice.
func (c *Comm) SendInts(dst, tag int, data []int) {
	m := c.leaseMessage()
	m.kind = payloadInt
	m.ints = grownInt(m.ints, len(data))
	copy(m.ints, data)
	start := c.sendMsg(dst, tag, m, 8*len(data))
	c.record("Send", 8*len(data), start)
}

// SendComplex transmits a complex128 slice.
func (c *Comm) SendComplex(dst, tag int, data []complex128) {
	m := c.leaseMessage()
	m.kind = payloadCplx
	m.cplx = grownCplx(m.cplx, len(data))
	copy(m.cplx, data)
	start := c.sendMsg(dst, tag, m, 16*len(data))
	c.record("Send", 16*len(data), start)
}

// SendN transmits a phantom message of n bytes: the full communication
// cost is modelled but no payload is copied. Skeleton workloads use
// this to replay class-B communication patterns cheaply.
func (c *Comm) SendN(dst, tag, n int) {
	start := c.sendPhantom(dst, tag, n)
	c.record("Send", n, start)
}

// Recv blocks until a message from src with tag arrives and copies its
// payload into buf, returning the number of elements received. It panics
// if the payload type mismatches or buf is too small (MPI truncation).
func (c *Comm) Recv(src, tag int, buf []float64) int {
	start := c.st.clock
	m := c.recvRaw(src, tag)
	n := copyFloat64(buf, m)
	bytes := m.bytes
	m.release()
	c.record("Recv", bytes, start)
	return n
}

// RecvInts is Recv for int payloads.
func (c *Comm) RecvInts(src, tag int, buf []int) int {
	start := c.st.clock
	m := c.recvRaw(src, tag)
	n := copyInt(buf, m)
	bytes := m.bytes
	m.release()
	c.record("Recv", bytes, start)
	return n
}

// RecvComplex is Recv for complex128 payloads.
func (c *Comm) RecvComplex(src, tag int, buf []complex128) int {
	start := c.st.clock
	m := c.recvRaw(src, tag)
	n := copyComplex(buf, m)
	bytes := m.bytes
	m.release()
	c.record("Recv", bytes, start)
	return n
}

// RecvN receives a phantom message and returns its modelled size in bytes.
func (c *Comm) RecvN(src, tag int) int {
	start := c.st.clock
	m := c.recvRaw(src, tag)
	if m.kind != payloadNone {
		panic("mpi: RecvN matched a message with a real payload")
	}
	bytes := m.bytes
	m.release()
	c.record("Recv", bytes, start)
	return bytes
}

// recvCombine receives a float64 message and folds it into data in
// place, recycling the payload buffer afterwards — the zero-copy receive
// path of the tree and recursive-doubling reductions, which previously
// staged every round through a freshly allocated scratch slice.
func (c *Comm) recvCombine(op Op, src, tag int, data []float64) {
	start := c.st.clock
	m := c.recvRaw(src, tag)
	if m.kind != payloadF64 {
		panic(fmt.Sprintf("mpi: reduction receive type mismatch: message holds %s, want []float64", m.kind))
	}
	op.combine(data, m.f64)
	bytes := m.bytes
	m.release()
	c.record("Recv", bytes, start)
}

// Sendrecv performs a combined send to dst and receive from src (equal
// float64 payloads), the staple of halo exchanges. It cannot deadlock
// because sends are eager.
func (c *Comm) Sendrecv(dst, sendTag int, send []float64, src, recvTag int, recv []float64) int {
	start := c.st.clock
	c.sendF64(dst, sendTag, send)
	m := c.recvRaw(src, recvTag)
	n := copyFloat64(recv, m)
	bytes := m.bytes
	m.release()
	c.record("Sendrecv", 8*len(send)+bytes, start)
	return n
}

// SendrecvN is the phantom form of Sendrecv: sendN bytes to dst, receive a
// phantom message from src.
func (c *Comm) SendrecvN(dst, sendTag, sendN, src, recvTag int) int {
	start := c.st.clock
	c.sendPhantom(dst, sendTag, sendN)
	m := c.recvRaw(src, recvTag)
	bytes := m.bytes
	m.release()
	c.record("Sendrecv", sendN+bytes, start)
	return bytes
}

func copyFloat64(buf []float64, m *message) int {
	if m.kind == payloadNone {
		panic("mpi: typed receive matched a phantom message")
	}
	if m.kind != payloadF64 {
		panic(fmt.Sprintf("mpi: receive type mismatch: message holds %s, want []float64", m.kind))
	}
	if len(m.f64) > len(buf) {
		panic(fmt.Sprintf("mpi: message truncated: %d elements into buffer of %d", len(m.f64), len(buf)))
	}
	return copy(buf, m.f64)
}

func copyInt(buf []int, m *message) int {
	if m.kind == payloadNone {
		panic("mpi: typed receive matched a phantom message")
	}
	if m.kind != payloadInt {
		panic(fmt.Sprintf("mpi: receive type mismatch: message holds %s, want []int", m.kind))
	}
	if len(m.ints) > len(buf) {
		panic(fmt.Sprintf("mpi: message truncated: %d elements into buffer of %d", len(m.ints), len(buf)))
	}
	return copy(buf, m.ints)
}

func copyComplex(buf []complex128, m *message) int {
	if m.kind == payloadNone {
		panic("mpi: typed receive matched a phantom message")
	}
	if m.kind != payloadCplx {
		panic(fmt.Sprintf("mpi: receive type mismatch: message holds %s, want []complex128", m.kind))
	}
	if len(m.cplx) > len(buf) {
		panic(fmt.Sprintf("mpi: message truncated: %d elements into buffer of %d", len(m.cplx), len(buf)))
	}
	return copy(buf, m.cplx)
}
