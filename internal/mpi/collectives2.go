package mpi

import "fmt"

// Additional collectives: the variable all-to-all used by IS-style key
// exchanges, reduce-scatter, and prefix scans.

const (
	tagAlltoallv = 1<<20 + 16
	tagRedScat   = 1<<20 + 17
	tagScan      = 1<<20 + 18
)

// Alltoallv exchanges variable-length float64 blocks: rank r sends
// send[sdispl[d]:sdispl[d]+sendCounts[d]] to each destination d and
// receives recvCounts[s] elements from each source s into
// recv[rdispl[s]:...]. Displacements are the prefix sums of the counts.
func (c *Comm) Alltoallv(send []float64, sendCounts []int, recv []float64, recvCounts []int) {
	p := c.Size()
	if len(sendCounts) != p || len(recvCounts) != p {
		panic(fmt.Sprintf("mpi: Alltoallv counts length %d/%d, want %d", len(sendCounts), len(recvCounts), p))
	}
	sdisplP, rdisplP := leaseIntScratch(p+1), leaseIntScratch(p+1)
	defer releaseIntScratch(sdisplP)
	defer releaseIntScratch(rdisplP)
	sdispl, rdispl := *sdisplP, *rdisplP
	sdispl[0], rdispl[0] = 0, 0
	for i := 0; i < p; i++ {
		sdispl[i+1] = sdispl[i] + sendCounts[i]
		rdispl[i+1] = rdispl[i] + recvCounts[i]
	}
	if sdispl[p] > len(send) || rdispl[p] > len(recv) {
		panic(fmt.Sprintf("mpi: Alltoallv buffers too small: need %d/%d, have %d/%d",
			sdispl[p], rdispl[p], len(send), len(recv)))
	}
	var totalBytes int
	for _, n := range sendCounts {
		totalBytes += 8 * n
	}
	c.collective("Alltoallv", totalBytes, func() {
		copy(recv[rdispl[c.rank]:rdispl[c.rank+1]], send[sdispl[c.rank]:sdispl[c.rank+1]])
		for s := 1; s < p; s++ {
			dst := (c.rank + s) % p
			src := (c.rank - s + p) % p
			c.Send(dst, tagAlltoallv, send[sdispl[dst]:sdispl[dst+1]])
			got := c.Recv(src, tagAlltoallv, recv[rdispl[src]:rdispl[src+1]])
			if got != recvCounts[src] {
				panic(fmt.Sprintf("mpi: Alltoallv count mismatch from %d: got %d, want %d", src, got, recvCounts[src]))
			}
		}
	})
}

// AlltoallvN performs a phantom variable all-to-all: sendBytes[d] bytes to
// each destination. It returns the bytes received from each source (known
// from the arriving messages, as with probed receives).
func (c *Comm) AlltoallvN(sendBytes []int) []int {
	p := c.Size()
	if len(sendBytes) != p {
		panic(fmt.Sprintf("mpi: AlltoallvN counts length %d, want %d", len(sendBytes), p))
	}
	recvBytes := make([]int, p)
	var total int
	for _, n := range sendBytes {
		total += n
	}
	c.collective("Alltoallv", total, func() {
		recvBytes[c.rank] = sendBytes[c.rank]
		for s := 1; s < p; s++ {
			dst := (c.rank + s) % p
			src := (c.rank - s + p) % p
			c.SendN(dst, tagAlltoallv, sendBytes[dst])
			recvBytes[src] = c.RecvN(src, tagAlltoallv)
		}
	})
	return recvBytes
}

// ReduceScatterBlock combines data with op across all ranks and scatters
// equal blocks of the result: recv gets block `rank` of the reduction.
// len(data) must be p*len(recv).
func (c *Comm) ReduceScatterBlock(op Op, data, recv []float64) {
	p := c.Size()
	n := len(recv)
	if len(data) != p*n {
		panic(fmt.Sprintf("mpi: ReduceScatterBlock data length %d, want %d", len(data), p*n))
	}
	c.collective("Reduce_scatter", 8*n, func() {
		// Reduce to rank 0 on a pooled scratch copy (incoming rounds are
		// combined straight out of their message payloads), then scatter
		// blocks.
		tmpP := leaseScratch(len(data))
		defer releaseScratch(tmpP)
		tmp := *tmpP
		copy(tmp, data)
		vr := c.rank
		mask := 1
		for mask < p {
			if vr&mask == 0 {
				if vr+mask < p {
					c.recvCombine(op, vr+mask, tagRedScat, tmp)
				}
			} else {
				c.Send(vr-mask, tagRedScat, tmp)
				break
			}
			mask <<= 1
		}
		if c.rank == 0 {
			copy(recv, tmp[:n])
			for r := 1; r < p; r++ {
				c.Send(r, tagRedScat+1, tmp[r*n:(r+1)*n])
			}
		} else {
			c.Recv(0, tagRedScat+1, recv)
		}
	})
}

// Scan computes the inclusive prefix reduction: after the call, rank r's
// data holds op(data_0, ..., data_r). Linear chain, as many MPI
// implementations use for small communicators.
func (c *Comm) Scan(op Op, data []float64) {
	p := c.Size()
	c.collective("Scan", 8*len(data), func() {
		if c.rank > 0 {
			c.recvCombine(op, c.rank-1, tagScan, data)
		}
		if c.rank < p-1 {
			c.Send(c.rank+1, tagScan, data)
		}
	})
}

// Exscan computes the exclusive prefix reduction: rank r's data becomes
// op(data_0, ..., data_{r-1}); rank 0's buffer is zeroed (Sum identity).
func (c *Comm) Exscan(op Op, data []float64) {
	p := c.Size()
	c.collective("Exscan", 8*len(data), func() {
		inclusiveP := leaseScratch(len(data))
		defer releaseScratch(inclusiveP)
		inclusive := *inclusiveP
		copy(inclusive, data)
		if c.rank > 0 {
			prevP := leaseScratch(len(data))
			prev := *prevP
			c.Recv(c.rank-1, tagScan+1, prev)
			op.combine(inclusive, prev)
			copy(data, prev)
			releaseScratch(prevP)
		} else {
			for i := range data {
				data[i] = 0
			}
		}
		if c.rank < p-1 {
			c.Send(c.rank+1, tagScan+1, inclusive)
		}
	})
}
