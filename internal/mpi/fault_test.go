package mpi_test

import (
	"errors"
	"math"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/cpumodel"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/platform"
	"repro/internal/sim"
)

// stepApp is a small checkpointable timestep loop: per-step compute, a
// ring halo exchange and an allreduce, checkpointing every `every` steps.
func stepApp(steps, every int) func(c *mpi.Comm) error {
	return func(c *mpi.Comm) error {
		np := c.Size()
		next := (c.Rank() + 1) % np
		prev := (c.Rank() - 1 + np) % np
		for step := c.ResumeStep(); step < steps; step++ {
			c.ComputeSeconds(0.25 + 0.05*float64(c.Rank()%3))
			if np > 1 {
				c.SendrecvN(next, 9, 4096, prev, 9)
			}
			c.AllreduceN(8)
			if every > 0 && (step+1)%every == 0 && step+1 < steps {
				c.Checkpoint(step+1, 64<<20)
			}
		}
		return nil
	}
}

func faultWorld(t *testing.T, np int, plan *fault.Plan) *mpi.World {
	t.Helper()
	p := platform.DCC()
	pl, err := cluster.Place(p, cluster.Spec{NP: np, Policy: cluster.Spread, Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.NewWorld(p, pl, mpi.WithFaults(plan))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestPreemptionFailsRunWithTypedError(t *testing.T) {
	plan := &fault.Plan{Preemptions: []fault.Preemption{{Node: 1, At: 2.0}}}
	w := faultWorld(t, 8, plan)
	_, err := w.Run(stepApp(40, 0))
	if err == nil {
		t.Fatal("preempted run should fail")
	}
	if !errors.Is(err, mpi.ErrRankFailed) {
		t.Fatalf("error should match ErrRankFailed, got %v", err)
	}
	var rf *mpi.RankFailedError
	if !errors.As(err, &rf) {
		t.Fatalf("error should be a *RankFailedError, got %T", err)
	}
	if rf.Node != 1 || rf.At != 2.0 {
		t.Fatalf("failure should carry the scheduled event, got %+v", rf)
	}
}

func TestPreemptionAfterCompletionIsHarmless(t *testing.T) {
	plan := &fault.Plan{Preemptions: []fault.Preemption{{Node: 0, At: 1e9}}}
	w := faultWorld(t, 8, plan)
	if _, err := w.Run(stepApp(5, 0)); err != nil {
		t.Fatalf("fault after the job ends must not fire: %v", err)
	}
}

func TestRunResilientRestartsAndCompletes(t *testing.T) {
	plan := &fault.Plan{Preemptions: []fault.Preemption{{Node: 2, At: 3.0}}}
	w := faultWorld(t, 8, plan)
	res, stats, err := w.RunResilient(mpi.ResilientConfig{Plan: plan}, stepApp(30, 5))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Restarts != 1 || len(stats.Failures) != 1 {
		t.Fatalf("want exactly one restart, got %+v", stats)
	}
	if stats.LostWork <= 0 || stats.LostWork > 3.0 {
		t.Fatalf("lost work %g out of range (0, 3]", stats.LostWork)
	}
	if stats.Checkpoints == 0 {
		t.Fatal("checkpoints should have committed")
	}
	if res.Time <= 3.0+30 {
		t.Fatalf("time-to-solution %g should include the failure and restart delay", res.Time)
	}

	// Same plan, same world parameters: bit-identical outcome.
	w2 := faultWorld(t, 8, plan)
	res2, stats2, err := w2.RunResilient(mpi.ResilientConfig{Plan: plan}, stepApp(30, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, res2) || !reflect.DeepEqual(stats, stats2) {
		t.Fatalf("resilient runs must be deterministic:\n%+v\n%+v", stats, stats2)
	}
}

func TestRunResilientZeroFaultBitIdentical(t *testing.T) {
	app := stepApp(12, 0)
	w := faultWorld(t, 8, nil)
	plain, err := w.Run(app)
	if err != nil {
		t.Fatal(err)
	}
	w2 := faultWorld(t, 8, nil)
	res, stats, err := w2.RunResilient(mpi.ResilientConfig{}, app)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Restarts != 0 || stats.LostWork != 0 {
		t.Fatalf("zero-fault run recorded overhead: %+v", stats)
	}
	if !reflect.DeepEqual(plain, res) {
		t.Fatalf("zero-fault RunResilient must equal plain Run:\n%+v\n%+v", plain, res)
	}
}

func TestRunResilientGivesUpAfterMaxRestarts(t *testing.T) {
	// A fault storm no checkpoint interval survives: every incarnation
	// dies before reaching the next checkpoint.
	plan := &fault.Plan{}
	for i := 0; i < 20; i++ {
		plan.Preemptions = append(plan.Preemptions, fault.Preemption{Node: 0, At: 0.5 + 40*float64(i)})
	}
	w := faultWorld(t, 8, plan)
	_, stats, err := w.RunResilient(mpi.ResilientConfig{Plan: plan, MaxRestarts: 3}, stepApp(400, 5))
	if err == nil {
		t.Fatal("run should give up")
	}
	if !errors.Is(err, mpi.ErrRankFailed) {
		t.Fatalf("give-up error should wrap ErrRankFailed: %v", err)
	}
	if len(stats.Failures) != 4 {
		t.Fatalf("want 4 recorded failures (initial + 3 restarts), got %d", len(stats.Failures))
	}
}

func TestCheckpointMisusePanics(t *testing.T) {
	w := faultWorld(t, 2, nil)
	_, err := w.Run(func(c *mpi.Comm) error {
		c.Checkpoint(0, 1024)
		return nil
	})
	if err == nil {
		t.Fatal("Checkpoint(0, ...) must abort the rank")
	}
}

// TestFaultMonotonicity: stragglers and link degradation only ever slow
// the job down — per-rank final clocks dominate the fault-free baseline.
func TestFaultMonotonicity(t *testing.T) {
	app := stepApp(10, 0)
	base, err := faultWorld(t, 8, nil).Run(app)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed uint64) bool {
		plan, err := fault.Generate(fault.Spec{
			StragglerRate:   600, // ~one window per rank per 6s
			DegradationRate: 900,
			Horizon:         base.Time * 2,
		}, "dcc", "mono", 8, 4, seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := faultWorld(t, 8, plan).Run(app)
		if err != nil {
			t.Fatal(err)
		}
		for r := range res.RankTimes {
			if res.RankTimes[r] < base.RankTimes[r]-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestCausalityUnderFaults: under arbitrary straggler/degradation plans a
// receive always completes at or after the send's start plus the link's
// modelled minimum cost — degraded latency plus degraded serialisation.
// Jitter is zeroed so the bound is exact; the sender publishes its clock
// before sending and the message match gives the happens-before edge.
func TestCausalityUnderFaults(t *testing.T) {
	p := platform.DCC()
	p.Inter.Jitter = sim.Jitter{}
	p.ComputeJitter = sim.Jitter{}
	pl, err := cluster.Place(p, cluster.Spec{NP: 2, Policy: cluster.Spread, Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	link := p.Link(0, 1)
	const msgBytes = 1 << 14
	prop := func(seed uint64, lat8, bw8 uint8) bool {
		latF := 1 + float64(lat8)/16
		bwF := 1 + float64(bw8)/16
		minCost := link.SendOverhead + latF*link.Latency + float64(msgBytes)*bwF/link.Bandwidth
		plan := &fault.Plan{
			Stragglers: map[int][]cpumodel.Throttle{
				0: {{Start: 0.5, End: 1.5, Factor: 1 + float64(seed%7)}},
			},
			Degradations: []netmodel.Degradation{
				{Start: 0, End: 100, LatencyFactor: latF, BandwidthFactor: bwF},
			},
		}
		w, err := mpi.NewWorld(p, pl, mpi.WithFaults(plan), mpi.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		const rounds = 20
		sendAt := make([]float64, rounds)
		ok := true
		_, err = w.Run(func(c *mpi.Comm) error {
			for i := 0; i < rounds; i++ {
				if c.Rank() == 0 {
					c.ComputeSeconds(0.05)
					sendAt[i] = c.Clock()
					c.SendN(1, 7, msgBytes)
				} else {
					c.RecvN(0, 7)
					if c.Clock() < sendAt[i]+minCost {
						ok = false
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestConcurrentFailingWorldsStress runs several resilient worlds with
// active fault planes concurrently — the race wall for the failure
// scoreboard, the quiescent abort and the checkpoint store.
func TestConcurrentFailingWorldsStress(t *testing.T) {
	// The second preemption fires after the first restart (restart delay
	// is 30s, so incarnation 1 begins at t=32).
	plan := &fault.Plan{Preemptions: []fault.Preemption{
		{Node: 1, At: 2.0}, {Node: 3, At: 40.0},
	}}
	const workers = 4
	type run struct {
		time     float64
		restarts int
		lost     float64
	}
	results := make([]run, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func(i int) {
			defer wg.Done()
			w := faultWorld(t, 16, plan)
			res, stats, err := w.RunResilient(mpi.ResilientConfig{Plan: plan}, stepApp(40, 4))
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = run{time: res.Time, restarts: stats.Restarts, lost: stats.LostWork}
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if results[i] != results[0] {
			t.Fatalf("concurrent failing worlds diverged: %+v vs %+v", results[0], results[i])
		}
	}
	if results[0].restarts != 2 {
		t.Fatalf("want 2 restarts, got %+v", results[0])
	}
}

// TestLostWorkBounded: lost work never exceeds the span between restore
// point and failure, and total accounted time stays within wall time.
func TestLostWorkBounded(t *testing.T) {
	plan := &fault.Plan{Preemptions: []fault.Preemption{{Node: 0, At: 4.0}}}
	w := faultWorld(t, 8, plan)
	res, stats, err := w.RunResilient(mpi.ResilientConfig{Plan: plan}, stepApp(30, 3))
	if err != nil {
		t.Fatal(err)
	}
	if stats.LostWork < 0 || stats.RestartOverhead < 0 {
		t.Fatalf("negative overheads: %+v", stats)
	}
	if stats.LostWork+stats.RestartOverhead >= res.Time {
		t.Fatalf("overheads %g+%g exceed wall %g",
			stats.LostWork, stats.RestartOverhead, res.Time)
	}
	if math.IsNaN(res.Time) || res.Time <= 0 {
		t.Fatalf("bad wall time %g", res.Time)
	}
}
