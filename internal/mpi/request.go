package mpi

import "fmt"

// Request represents an outstanding nonblocking operation. Requests are
// completed by Comm.Wait or Comm.Waitall on the same rank that created
// them; they are not safe for concurrent use.
type Request struct {
	c      *Comm
	isSend bool
	done   bool

	// receive-side fields
	src, tag int
	fbuf     []float64
	ibuf     []int
	cbuf     []complex128
	phantom  bool
	start    float64 // clock at post time
	bytes    int     // filled on completion
	n        int     // elements received
}

// Isend posts a nonblocking send of a float64 payload. The injection cost
// is charged immediately (the NIC serialises outgoing messages); Wait is a
// local no-op, mirroring eager-protocol MPI.
func (c *Comm) Isend(dst, tag int, data []float64) *Request {
	start := c.sendF64(dst, tag, data)
	c.record("Isend", 8*len(data), start)
	return &Request{c: c, isSend: true, done: true}
}

// IsendN posts a nonblocking phantom send of n bytes.
func (c *Comm) IsendN(dst, tag, n int) *Request {
	start := c.sendPhantom(dst, tag, n)
	c.record("Isend", n, start)
	return &Request{c: c, isSend: true, done: true}
}

// Irecv posts a nonblocking receive into buf. Matching happens at Wait.
func (c *Comm) Irecv(src, tag int, buf []float64) *Request {
	return &Request{c: c, src: src, tag: tag, fbuf: buf, start: c.st.clock}
}

// IrecvInts posts a nonblocking receive of an int payload.
func (c *Comm) IrecvInts(src, tag int, buf []int) *Request {
	return &Request{c: c, src: src, tag: tag, ibuf: buf, start: c.st.clock}
}

// IrecvComplex posts a nonblocking receive of a complex128 payload.
func (c *Comm) IrecvComplex(src, tag int, buf []complex128) *Request {
	return &Request{c: c, src: src, tag: tag, cbuf: buf, start: c.st.clock}
}

// IrecvN posts a nonblocking phantom receive.
func (c *Comm) IrecvN(src, tag int) *Request {
	return &Request{c: c, src: src, tag: tag, phantom: true, start: c.st.clock}
}

// Wait completes the request. For receives it blocks until the matching
// message arrives and advances the virtual clock to the arrival time.
// It returns the number of elements received (0 for sends and phantoms).
func (c *Comm) Wait(r *Request) int {
	if r.c.st != c.st {
		panic("mpi: Wait called on a different rank's request")
	}
	if r.done {
		return r.n
	}
	// Match on the communicator the request was posted on (its context id
	// scopes the matching), which shares this rank's clock.
	start := c.st.clock
	m := r.c.recvRaw(r.src, r.tag)
	switch {
	case r.phantom:
		if m.kind != payloadNone {
			panic("mpi: phantom receive matched a message with a real payload")
		}
	case r.fbuf != nil:
		r.n = copyFloat64(r.fbuf, m)
	case r.ibuf != nil:
		r.n = copyInt(r.ibuf, m)
	case r.cbuf != nil:
		r.n = copyComplex(r.cbuf, m)
	default:
		panic("mpi: receive request without a buffer")
	}
	r.bytes = m.bytes
	r.done = true
	m.release()
	c.record("Wait", r.bytes, start)
	return r.n
}

// Waitall completes all requests in order.
func (c *Comm) Waitall(reqs ...*Request) {
	for i, r := range reqs {
		if r == nil {
			panic(fmt.Sprintf("mpi: Waitall: nil request at index %d", i))
		}
		c.Wait(r)
	}
}
