package mpi

import (
	"fmt"
	"sort"
)

// Op is a reduction operator for Reduce/Allreduce.
type Op int

// Reduction operators.
const (
	Sum Op = iota
	Max
	Min
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case Sum:
		return "sum"
	case Max:
		return "max"
	case Min:
		return "min"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

func (o Op) combine(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("mpi: reduction length mismatch %d vs %d", len(dst), len(src)))
	}
	switch o {
	case Sum:
		for i, v := range src {
			dst[i] += v
		}
	case Max:
		for i, v := range src {
			if v > dst[i] {
				dst[i] = v
			}
		}
	case Min:
		for i, v := range src {
			if v < dst[i] {
				dst[i] = v
			}
		}
	default:
		panic(fmt.Sprintf("mpi: unknown op %v", o))
	}
}

func (o Op) combineInts(dst, src []int) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("mpi: reduction length mismatch %d vs %d", len(dst), len(src)))
	}
	switch o {
	case Sum:
		for i, v := range src {
			dst[i] += v
		}
	case Max:
		for i, v := range src {
			if v > dst[i] {
				dst[i] = v
			}
		}
	case Min:
		for i, v := range src {
			if v < dst[i] {
				dst[i] = v
			}
		}
	default:
		panic(fmt.Sprintf("mpi: unknown op %v", o))
	}
}

// Reserved tags for collective rounds. User code and collectives never
// interleave on one communicator from one rank, and per-(src,tag) FIFO
// matching keeps consecutive collectives correctly paired.
const (
	tagBarrier = 1 << 20
	tagBcast   = 1<<20 + 1
	tagReduce  = 1<<20 + 2
	tagAllred  = 1<<20 + 3
	tagGather  = 1<<20 + 4
	tagScatter = 1<<20 + 5
	tagAllgat  = 1<<20 + 6
	tagAlltoal = 1<<20 + 7
	tagSplit   = 1<<20 + 8
)

// collective runs body with nested tracing suppressed and records the whole
// operation as a single call, the way IPM reports MPI collectives.
func (c *Comm) collective(name string, bytes int, body func()) {
	start := c.st.clock
	c.st.quiet++
	body()
	c.st.quiet--
	c.record(name, bytes, start)
}

// Barrier blocks until all ranks of the communicator reach it, using a
// dissemination barrier (ceil(log2 p) rounds for any p).
func (c *Comm) Barrier() {
	p := c.Size()
	c.collective("Barrier", 0, func() {
		for k := 1; k < p; k <<= 1 {
			c.SendN((c.rank+k)%p, tagBarrier, 0)
			c.RecvN((c.rank-k+p)%p, tagBarrier)
		}
	})
}

// binomial runs the binomial-tree communication of a broadcast rooted at
// root; send/recv implement one hop.
func (c *Comm) binomialBcast(root int, send func(dst int), recv func(src int)) {
	p := c.Size()
	vr := (c.rank - root + p) % p
	mask := 1
	for mask < p {
		if vr&mask != 0 {
			recv((vr - mask + root) % p)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vr+mask < p {
			send((vr + mask + root) % p)
		}
		mask >>= 1
	}
}

// Bcast broadcasts data from root to all ranks (binomial tree). On
// non-root ranks data is overwritten.
func (c *Comm) Bcast(root int, data []float64) {
	c.checkRank(root, "root")
	c.collective("Bcast", 8*len(data), func() {
		c.binomialBcast(root,
			func(dst int) { c.Send(dst, tagBcast, data) },
			func(src int) { c.Recv(src, tagBcast, data) })
	})
}

// BcastInts broadcasts an int slice from root.
func (c *Comm) BcastInts(root int, data []int) {
	c.checkRank(root, "root")
	c.collective("Bcast", 8*len(data), func() {
		c.binomialBcast(root,
			func(dst int) { c.SendInts(dst, tagBcast, data) },
			func(src int) { c.RecvInts(src, tagBcast, data) })
	})
}

// BcastN broadcasts a phantom payload of n bytes from root.
func (c *Comm) BcastN(root, n int) {
	c.checkRank(root, "root")
	c.collective("Bcast", n, func() {
		c.binomialBcast(root,
			func(dst int) { c.SendN(dst, tagBcast, n) },
			func(src int) { c.RecvN(src, tagBcast) })
	})
}

// Reduce combines data from all ranks with op into root's buffer
// (binomial tree). Non-root buffers are used as scratch and hold partial
// results afterwards.
func (c *Comm) Reduce(op Op, root int, data []float64) {
	c.checkRank(root, "root")
	c.collective("Reduce", 8*len(data), func() {
		c.reduceBody(op, root, data)
	})
}

func (c *Comm) reduceBody(op Op, root int, data []float64) {
	p := c.Size()
	vr := (c.rank - root + p) % p
	mask := 1
	for mask < p {
		if vr&mask == 0 {
			if vr+mask < p {
				// Combine straight out of the arriving message's pooled
				// payload: no per-round scratch slice.
				src := (vr + mask + root) % p
				c.recvCombine(op, src, tagReduce, data)
			}
		} else {
			dst := (vr - mask + root) % p
			c.Send(dst, tagReduce, data)
			break
		}
		mask <<= 1
	}
}

// Allreduce combines data across all ranks with op, leaving the result in
// every rank's buffer. Power-of-two sizes use recursive doubling
// (ceil(log2 p) rounds); other sizes fall back to reduce+broadcast.
func (c *Comm) Allreduce(op Op, data []float64) {
	p := c.Size()
	c.collective("Allreduce", 8*len(data), func() {
		if p&(p-1) == 0 {
			for mask := 1; mask < p; mask <<= 1 {
				partner := c.rank ^ mask
				c.Send(partner, tagAllred, data)
				c.recvCombine(op, partner, tagAllred, data)
			}
			return
		}
		c.reduceBody(op, 0, data)
		c.binomialBcast(0,
			func(dst int) { c.Send(dst, tagBcast, data) },
			func(src int) { c.Recv(src, tagBcast, data) })
	})
}

// AllreduceInts is Allreduce for int payloads.
func (c *Comm) AllreduceInts(op Op, data []int) {
	fdp := leaseScratch(len(data))
	fd := *fdp
	for i, v := range data {
		fd[i] = float64(v)
	}
	// int reductions reuse the float64 machinery; exact for |v| < 2^53.
	c.Allreduce(op, fd)
	for i, v := range fd {
		data[i] = int(v)
	}
	releaseScratch(fdp)
}

// AllreduceN performs the communication pattern of an n-byte Allreduce
// with phantom payloads (the skeleton workloads' workhorse: the paper's
// KSp section is "entirely 4-byte all-reduce operations").
func (c *Comm) AllreduceN(n int) {
	p := c.Size()
	c.collective("Allreduce", n, func() {
		if p&(p-1) == 0 {
			for mask := 1; mask < p; mask <<= 1 {
				partner := c.rank ^ mask
				c.SendN(partner, tagAllred, n)
				c.RecvN(partner, tagAllred)
			}
			return
		}
		// reduce to 0
		vr := c.rank
		mask := 1
		for mask < p {
			if vr&mask == 0 {
				if vr+mask < p {
					c.RecvN(vr+mask, tagReduce)
				}
			} else {
				c.SendN(vr-mask, tagReduce, n)
				break
			}
			mask <<= 1
		}
		// broadcast from 0
		c.binomialBcast(0,
			func(dst int) { c.SendN(dst, tagBcast, n) },
			func(src int) { c.RecvN(src, tagBcast) })
	})
}

// Allgather gathers each rank's send block into recv on every rank
// (ring algorithm, p-1 steps). len(recv) must be p*len(send).
func (c *Comm) Allgather(send, recv []float64) {
	p := c.Size()
	n := len(send)
	if len(recv) != p*n {
		panic(fmt.Sprintf("mpi: Allgather recv length %d, want %d", len(recv), p*n))
	}
	c.collective("Allgather", 8*n, func() {
		copy(recv[c.rank*n:(c.rank+1)*n], send)
		right := (c.rank + 1) % p
		left := (c.rank - 1 + p) % p
		for s := 0; s < p-1; s++ {
			outBlk := (c.rank - s + p) % p
			inBlk := (c.rank - s - 1 + p) % p
			c.Send(right, tagAllgat, recv[outBlk*n:(outBlk+1)*n])
			c.Recv(left, tagAllgat, recv[inBlk*n:(inBlk+1)*n])
		}
	})
}

// AllgatherInts gathers int blocks.
func (c *Comm) AllgatherInts(send, recv []int) {
	p := c.Size()
	n := len(send)
	if len(recv) != p*n {
		panic(fmt.Sprintf("mpi: AllgatherInts recv length %d, want %d", len(recv), p*n))
	}
	c.collective("Allgather", 8*n, func() {
		copy(recv[c.rank*n:(c.rank+1)*n], send)
		right := (c.rank + 1) % p
		left := (c.rank - 1 + p) % p
		for s := 0; s < p-1; s++ {
			outBlk := (c.rank - s + p) % p
			inBlk := (c.rank - s - 1 + p) % p
			c.SendInts(right, tagAllgat, recv[outBlk*n:(outBlk+1)*n])
			c.RecvInts(left, tagAllgat, recv[inBlk*n:(inBlk+1)*n])
		}
	})
}

// AllgatherN performs a phantom allgather where each rank contributes n
// bytes.
func (c *Comm) AllgatherN(n int) {
	p := c.Size()
	c.collective("Allgather", n, func() {
		right := (c.rank + 1) % p
		left := (c.rank - 1 + p) % p
		for s := 0; s < p-1; s++ {
			c.SendN(right, tagAllgat, n)
			c.RecvN(left, tagAllgat)
		}
	})
}

// Alltoall exchanges equal blocks between every pair of ranks (pairwise
// exchange, p-1 steps). len(send) == len(recv) == p*blockLen.
func (c *Comm) Alltoall(send, recv []float64) {
	p := c.Size()
	if len(send) != len(recv) || len(send)%p != 0 {
		panic(fmt.Sprintf("mpi: Alltoall buffer lengths %d/%d not a multiple of %d ranks", len(send), len(recv), p))
	}
	n := len(send) / p
	c.collective("Alltoall", 8*len(send), func() {
		copy(recv[c.rank*n:(c.rank+1)*n], send[c.rank*n:(c.rank+1)*n])
		for s := 1; s < p; s++ {
			dst := (c.rank + s) % p
			src := (c.rank - s + p) % p
			c.Send(dst, tagAlltoal, send[dst*n:(dst+1)*n])
			c.Recv(src, tagAlltoal, recv[src*n:(src+1)*n])
		}
	})
}

// AlltoallComplex exchanges equal complex128 blocks (used by the FT
// transpose).
func (c *Comm) AlltoallComplex(send, recv []complex128) {
	p := c.Size()
	if len(send) != len(recv) || len(send)%p != 0 {
		panic(fmt.Sprintf("mpi: AlltoallComplex buffer lengths %d/%d not a multiple of %d ranks", len(send), len(recv), p))
	}
	n := len(send) / p
	c.collective("Alltoall", 16*len(send), func() {
		copy(recv[c.rank*n:(c.rank+1)*n], send[c.rank*n:(c.rank+1)*n])
		for s := 1; s < p; s++ {
			dst := (c.rank + s) % p
			src := (c.rank - s + p) % p
			c.SendComplex(dst, tagAlltoal, send[dst*n:(dst+1)*n])
			c.RecvComplex(src, tagAlltoal, recv[src*n:(src+1)*n])
		}
	})
}

// AlltoallN performs a phantom all-to-all where each rank sends blockBytes
// to every other rank. This is the MPI_Alltoall whose per-pair block size
// shrinks as 1/p^2, the effect the paper uses to explain FT's recovery at
// high process counts on DCC.
func (c *Comm) AlltoallN(blockBytes int) {
	p := c.Size()
	c.collective("Alltoall", blockBytes*p, func() {
		for s := 1; s < p; s++ {
			dst := (c.rank + s) % p
			src := (c.rank - s + p) % p
			c.SendN(dst, tagAlltoal, blockBytes)
			c.RecvN(src, tagAlltoal)
		}
	})
}

// Gather collects each rank's send block to root's recv buffer (linear).
// recv is only written on root, where len(recv) must be p*len(send).
func (c *Comm) Gather(root int, send, recv []float64) {
	c.checkRank(root, "root")
	p := c.Size()
	n := len(send)
	c.collective("Gather", 8*n, func() {
		if c.rank == root {
			if len(recv) != p*n {
				panic(fmt.Sprintf("mpi: Gather recv length %d, want %d", len(recv), p*n))
			}
			copy(recv[root*n:(root+1)*n], send)
			for r := 0; r < p; r++ {
				if r != root {
					c.Recv(r, tagGather, recv[r*n:(r+1)*n])
				}
			}
		} else {
			c.Send(root, tagGather, send)
		}
	})
}

// GatherN performs a phantom gather of n bytes per rank to root.
func (c *Comm) GatherN(root, n int) {
	c.checkRank(root, "root")
	p := c.Size()
	c.collective("Gather", n, func() {
		if c.rank == root {
			for r := 0; r < p; r++ {
				if r != root {
					c.RecvN(r, tagGather)
				}
			}
		} else {
			c.SendN(root, tagGather, n)
		}
	})
}

// Scatter distributes consecutive blocks of root's send buffer to each
// rank's recv (linear). send is only read on root.
func (c *Comm) Scatter(root int, send, recv []float64) {
	c.checkRank(root, "root")
	p := c.Size()
	n := len(recv)
	c.collective("Scatter", 8*n, func() {
		if c.rank == root {
			if len(send) != p*n {
				panic(fmt.Sprintf("mpi: Scatter send length %d, want %d", len(send), p*n))
			}
			for r := 0; r < p; r++ {
				if r != root {
					c.Send(r, tagScatter, send[r*n:(r+1)*n])
				}
			}
			copy(recv, send[root*n:(root+1)*n])
		} else {
			c.Recv(root, tagScatter, recv)
		}
	})
}

// Split partitions the communicator by color; ranks with equal color form
// a new communicator ordered by (key, parent rank). Like MPI_Comm_split it
// is collective and communicates (an allgather of color/key pairs).
func (c *Comm) Split(color, key int) *Comm {
	p := c.Size()
	pairs := make([]int, 2*p)
	c.collective("Comm_split", 16, func() {
		// Gather (color, key) from everyone via the ring allgather.
		mine := []int{color, key}
		copy(pairs[2*c.rank:], mine)
		right := (c.rank + 1) % p
		left := (c.rank - 1 + p) % p
		for s := 0; s < p-1; s++ {
			outBlk := (c.rank - s + p) % p
			inBlk := (c.rank - s - 1 + p) % p
			c.SendInts(right, tagSplit, pairs[2*outBlk:2*outBlk+2])
			c.RecvInts(left, tagSplit, pairs[2*inBlk:2*inBlk+2])
		}
	})

	type member struct{ key, parentRank int }
	var members []member
	for r := 0; r < p; r++ {
		if pairs[2*r] == color {
			members = append(members, member{key: pairs[2*r+1], parentRank: r})
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].key != members[j].key {
			return members[i].key < members[j].key
		}
		return members[i].parentRank < members[j].parentRank
	})

	group := make([]int, len(members))
	newRank := -1
	for i, m := range members {
		group[i] = c.group[m.parentRank]
		if m.parentRank == c.rank {
			newRank = i
		}
	}
	// Derive a context id every member computes identically: mix the parent
	// context with the color and the parent-comm split generation.
	c.nsplits++
	ctx := c.ctx
	ctx = ctx*0x9e3779b97f4a7c15 + uint64(color+1)
	ctx = ctx*0x9e3779b97f4a7c15 + uint64(c.nsplits)
	ctx ^= ctx >> 29

	return &Comm{st: c.st, ctx: ctx, rank: newRank, group: group}
}
