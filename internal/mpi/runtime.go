package mpi

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"repro/internal/pdes"
)

// Runtime selects the execution engine that multiplexes a world's ranks.
// Both runtimes execute the same rank programs over the same message
// plane and cost models, and — because every workload in this repository
// receives on explicit (source, tag) channels, making each run a Kahn
// process network — they produce byte-identical virtual-time results.
// The goroutine runtime is the small-np correctness oracle; the PDES
// runtime is the scalable engine for worlds of 10k+ virtual ranks.
type Runtime int

const (
	// Goroutine runs one OS-scheduled goroutine per rank, with receives
	// blocking on condition variables. Simple and well-tested, but every
	// rank occupies a goroutine stack and the OS scheduler decides the
	// interleaving, which caps practical world sizes and leaves deadlock
	// detection to a wall-clock watchdog.
	Goroutine Runtime = iota
	// PDES runs ranks as coroutines parked and resumed by a conservative
	// discrete-event engine (package pdes): at most a bounded number of
	// ranks execute concurrently, resumption follows a deterministic
	// virtual-time event queue, and a world with every rank blocked is
	// detected instantly instead of by timeout.
	PDES
)

// String names the runtime the way the -runtime flags spell it.
func (r Runtime) String() string {
	switch r {
	case Goroutine:
		return "goroutine"
	case PDES:
		return "pdes"
	}
	return fmt.Sprintf("runtime(%d)", int(r))
}

// RuntimeByName parses a -runtime flag value ("" selects Goroutine).
func RuntimeByName(s string) (Runtime, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "goroutine":
		return Goroutine, nil
	case "pdes", "event", "events":
		return PDES, nil
	}
	return Goroutine, fmt.Errorf("mpi: unknown runtime %q (want goroutine or pdes)", s)
}

// WithRuntime selects the world's execution engine (default Goroutine).
func WithRuntime(r Runtime) Option { return func(w *World) { w.runtime = r } }

// WithEngineWorkers bounds how many ranks the PDES engine executes
// concurrently (default GOMAXPROCS; values <= 0 restore the default).
// The bound affects only wall-clock speed — results are identical at any
// worker count, which the parity tests assert.
func WithEngineWorkers(n int) Option { return func(w *World) { w.engWorkers = n } }

// Runtime returns the world's configured execution engine.
func (w *World) Runtime() Runtime { return w.runtime }

// startEngine installs a fresh PDES engine for one Run. The engine is
// per-Run state: each Run of a reusable world gets its own event queue
// and proc table.
func (w *World) startEngine() *pdes.Engine {
	workers := w.engWorkers
	if workers <= 0 {
		// The whole point of the engine at 10k+ ranks is that only a
		// handful of rank goroutines are runnable at once; default to the
		// machine's parallelism rather than pdes.New's "unbounded".
		workers = runtime.GOMAXPROCS(0)
	}
	eng := pdes.New(w.np, workers)
	eng.OnStall(func(parked []int) { w.onStall(parked) })
	w.eng.Store(eng)
	return eng
}

// engine returns the Run-scoped PDES engine, or nil under the goroutine
// runtime.
func (w *World) engine() *pdes.Engine {
	e, _ := w.eng.Load().(*pdes.Engine)
	return e
}

// onStall handles the PDES engine's stall notification: every live rank
// is parked on a receive that no delivered or future message can satisfy.
// Under a fault plan this is the quiescence point — the scoreboard's
// "maximal progress" rule — and the world aborts with the recorded rank
// failure. Without one it is a genuine deadlock in the rank program; the
// goroutine runtime would sit on it until the wall-clock watchdog fires,
// the engine reports it immediately with each parked rank's wait
// predicate.
func (w *World) onStall(parked []int) {
	w.sb.mu.Lock()
	failed := w.sb.failed
	w.sb.mu.Unlock()
	if !failed {
		var b strings.Builder
		fmt.Fprintf(&b, "mpi: deadlock: %d rank(s) blocked with no runnable peer:", len(parked))
		for i, r := range parked {
			if i == 4 && len(parked) > 5 {
				fmt.Fprintf(&b, " ... (%d more)", len(parked)-i)
				break
			}
			bx := w.inboxes[r]
			bx.mu.Lock()
			src, tag := bx.wsrc, bx.wtag
			bx.mu.Unlock()
			fmt.Fprintf(&b, " rank %d waiting on (src=%d, tag=%d)", r, src, tag)
		}
		w.dl.mu.Lock()
		if w.dl.err == nil {
			w.dl.err = fmt.Errorf("%s", b.String())
		}
		w.dl.mu.Unlock()
	}
	w.abortAll()
}

// deadlock carries the PDES engine's deadlock diagnosis from the stall
// handler to Run's result path.
type deadlock struct {
	mu  sync.Mutex
	err error
}

// deadlockErr returns the recorded deadlock diagnosis, if any.
func (w *World) deadlockErr() error {
	w.dl.mu.Lock()
	defer w.dl.mu.Unlock()
	return w.dl.err
}
