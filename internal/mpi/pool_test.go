package mpi

import (
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/platform"
	"repro/internal/sim"
)

// withRendezvous runs body under the given eager/rendezvous threshold,
// restoring the previous global setting afterwards.
func withRendezvous(n int64, body func()) {
	prev := SetRendezvousBytes(n)
	defer SetRendezvousBytes(prev)
	body()
}

// byteTracer accumulates per-operation call counts and payload bytes —
// exactly the inputs IPM's byte accounting aggregates — so equivalence
// tests can assert pooling never changes what the profiler sees.
type byteTracer struct {
	mu    sync.Mutex
	calls map[string]int
	bytes map[string]int
}

func newByteTracer() *byteTracer {
	return &byteTracer{calls: map[string]int{}, bytes: map[string]int{}}
}

func (t *byteTracer) Call(rank int, rec CallRecord) {
	t.mu.Lock()
	t.calls[rec.Name]++
	t.bytes[rec.Name] += rec.Bytes
	t.mu.Unlock()
}

func (t *byteTracer) Advance(rank int, kind string, start, dur float64) {}
func (t *byteTracer) Region(rank int, name string, at float64)          {}

func (t *byteTracer) summary() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return fmt.Sprintf("calls=%v bytes=%v", t.calls, t.bytes)
}

// exchangeDigest runs a 4-rank workload exercising every payload type and
// the pooled collectives, and returns a digest of all bytes received plus
// the tracer's byte accounting. The workload is deterministic in seed, so
// any divergence between pooling modes is a correctness bug.
func exchangeDigest(t *testing.T, seed uint64, n int) (digest uint64, virtual float64, accounting string) {
	t.Helper()
	const np = 4
	tr := newByteTracer()
	digests := make([]uint64, np)
	fn := func(c *Comm) error {
		r := c.Rank()
		rng := sim.NewRNG(seed).Derive(uint64(r) + 1)
		right, left := (r+1)%np, (r+np-1)%np

		f := make([]float64, n)
		for i := range f {
			f[i] = rng.Float64()
		}
		is := make([]int, n)
		for i := range is {
			is[i] = int(rng.Uint64() % 100003)
		}
		cs := make([]complex128, (n+1)/2)
		for i := range cs {
			cs[i] = complex(rng.Float64(), rng.Float64())
		}

		h := fnv.New64a()
		put := func(v uint64) {
			var b [8]byte
			for i := range b {
				b[i] = byte(v >> (8 * i))
			}
			h.Write(b[:])
		}

		// Ring exchange of each payload type; sends are eager so the ring
		// cannot deadlock.
		fr := make([]float64, n)
		c.Send(right, 7, f)
		c.Recv(left, 7, fr)
		ir := make([]int, n)
		c.SendInts(right, 8, is)
		c.RecvInts(left, 8, ir)
		cr := make([]complex128, len(cs))
		c.SendComplex(right, 9, cs)
		c.RecvComplex(left, 9, cr)

		// Nonblocking pair plus a phantom exchange.
		req := c.IrecvN(left, 10)
		c.SendN(right, 10, 3*n)
		phantomBytes := c.Wait(req)
		fr2 := make([]float64, n)
		rq := c.Irecv(left, 11, fr2)
		c.Wait(c.Isend(right, 11, f))
		c.Wait(rq)

		// Pooled collectives over the same data.
		red := append([]float64(nil), f...)
		c.Allreduce(Sum, red)
		sc := append([]float64(nil), f...)
		c.Scan(Sum, sc)
		ex := append([]float64(nil), f...)
		c.Exscan(Sum, ex)
		blk := make([]float64, n)
		rs := make([]float64, np*n)
		for i := range rs {
			rs[i] = f[i%n] * float64(i/n+1)
		}
		c.ReduceScatterBlock(Sum, rs, blk)
		ri := append([]int(nil), is...)
		c.AllreduceInts(Sum, ri)

		// Variable all-to-all: rank r sends (d+1) elements to destination d.
		counts := make([]int, np)
		for d := range counts {
			counts[d] = d + 1
		}
		var tot int
		for _, k := range counts {
			tot += k
		}
		sendv := make([]float64, tot)
		for i := range sendv {
			sendv[i] = f[i%n] + float64(r)
		}
		rcounts := make([]int, np)
		for s := range rcounts {
			rcounts[s] = r + 1
		}
		recvv := make([]float64, np*(r+1))
		c.Alltoallv(sendv, counts, recvv, rcounts)

		for _, v := range fr {
			put(math.Float64bits(v))
		}
		for _, v := range ir {
			put(uint64(v))
		}
		for _, v := range cr {
			put(math.Float64bits(real(v)))
			put(math.Float64bits(imag(v)))
		}
		put(uint64(phantomBytes))
		for _, v := range fr2 {
			put(math.Float64bits(v))
		}
		for _, s := range [][]float64{red, sc, ex, blk, recvv} {
			for _, v := range s {
				put(math.Float64bits(v))
			}
		}
		for _, v := range ri {
			put(uint64(v))
		}
		digests[r] = h.Sum64()
		return nil
	}

	p := platform.Vayu()
	pl, err := cluster.Place(p, cluster.Spec{NP: np})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(p, pl, WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(fn)
	if err != nil {
		t.Fatal(err)
	}

	h := fnv.New64a()
	for _, d := range digests {
		fmt.Fprintf(h, "%016x", d)
	}
	return h.Sum64(), res.Time, tr.summary()
}

// TestPooledUnpooledEquivalence is the quick property behind the pool's
// correctness claim: for random payload sizes, the pooled plane (default
// threshold), a tiny rendezvous threshold (forcing exact-size
// ownership-transfer buffers), and pooling disabled entirely all deliver
// identical payload bytes, identical IPM byte accounting, and identical
// virtual time.
func TestPooledUnpooledEquivalence(t *testing.T) {
	type outcome struct {
		digest     uint64
		virtual    float64
		accounting string
	}
	property := func(seed uint64, sz uint16) bool {
		n := int(sz%777) + 1
		modes := []int64{DefaultRendezvousBytes, 64, 0}
		var got []outcome
		for _, mode := range modes {
			withRendezvous(mode, func() {
				d, v, acct := exchangeDigest(t, seed, n)
				got = append(got, outcome{d, v, acct})
			})
		}
		for i := 1; i < len(got); i++ {
			if got[i] != got[0] {
				t.Logf("seed=%d n=%d: threshold %d diverged from %d:\n  %+v\nvs %+v",
					seed, n, modes[i], modes[0], got[i], got[0])
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 12}
	if testing.Short() {
		cfg.MaxCount = 3
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPendingCounterConcurrent hammers one inbox with concurrent
// producers and a consumer draining via exact and wildcard matches, and
// checks the O(1) maintained pending counter against a brute-force
// recount of every bucket throughout.
func TestPendingCounterConcurrent(t *testing.T) {
	const (
		producers   = 4
		perProducer = 300 // divisible by 3: each tag 0..2 gets exactly 100
		perTag      = perProducer / 3
	)
	w := &World{} // faults == nil: no quiescence scoreboard in play
	b := newInbox()

	check := func() {
		counter, brute := b.pendingDebug()
		if counter != brute {
			t.Errorf("pending counter %d != brute-force recount %d", counter, brute)
		}
	}

	var wg sync.WaitGroup
	wg.Add(producers)
	for pr := 0; pr < producers; pr++ {
		pr := pr
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				m, _ := newMessage()
				m.ctx, m.src, m.tag = 1, pr, i%3
				b.put(w, m)
			}
		}()
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		// Exact matches first (tags 0 and 1 of every producer, quotas the
		// producers are guaranteed to eventually satisfy), then a wildcard
		// drain of the tag-2 remainder. Wildcards come last because a
		// wildcard can match anything: taken earlier it could consume a
		// message an exact quota still needs and deadlock the consumer.
		n := 0
		for round := 0; round < perTag; round++ {
			for pr := 0; pr < producers; pr++ {
				for tag := 0; tag < 2; tag++ {
					b.match(w, 1, pr, tag, 0).release()
					if n++; n%37 == 0 {
						check()
					}
				}
			}
		}
		for i := 0; i < producers*perTag; i++ {
			m := b.match(w, 1, AnySource, AnyTag, 0)
			if m.tag != 2 {
				t.Errorf("wildcard drain got tag %d, want 2", m.tag)
			}
			m.release()
			if n++; n%37 == 0 {
				check()
			}
		}
	}()

	wg.Wait()
	<-done
	check()
	if got := b.pending(); got != 0 {
		t.Fatalf("inbox drained but pending() = %d", got)
	}
}

// TestPendingCounterFIFO checks the counter across the put/take paths of
// a deterministic sequence: exact buckets must pop in per-(src,tag) FIFO
// order and wildcards in arrival order, with the counter exact at every
// step.
func TestPendingCounterFIFO(t *testing.T) {
	w := &World{}
	b := newInbox()
	for i := 0; i < 6; i++ {
		m, _ := newMessage()
		m.ctx, m.src, m.tag, m.bytes = 1, i%2, 5, i
		b.put(w, m)
	}
	if counter, brute := b.pendingDebug(); counter != 6 || brute != 6 {
		t.Fatalf("after 6 puts: counter=%d brute=%d", counter, brute)
	}
	// Exact match on src 0 must yield arrival order 0, 2, 4.
	for _, want := range []int{0, 2, 4} {
		m := b.match(w, 1, 0, 5, 0)
		if m.bytes != want {
			t.Fatalf("exact match got bytes %d, want %d", m.bytes, want)
		}
		m.release()
	}
	// Wildcard drains the rest in physical arrival order: 1, 3, 5.
	for _, want := range []int{1, 3, 5} {
		m := b.match(w, 1, AnySource, AnyTag, 0)
		if m.bytes != want {
			t.Fatalf("wildcard match got bytes %d, want %d", m.bytes, want)
		}
		m.release()
	}
	if counter, brute := b.pendingDebug(); counter != 0 || brute != 0 {
		t.Fatalf("after drain: counter=%d brute=%d", counter, brute)
	}
}

// TestPoolSafetyStress runs several worlds concurrently, each streaming
// sender-stamped payloads through the shared message pool, and verifies
// every received element. A buffer handed to two ranks at once — or
// recycled before the receiver finished reading — corrupts the stamp
// pattern; under -race (which tier-1 runs) the detector additionally
// flags any unsynchronized reuse of a leased buffer.
func TestPoolSafetyStress(t *testing.T) {
	const (
		worlds = 4
		np     = 8
		rounds = 50
		n      = 257 // odd size: pooled cap (512) exceeds length
	)
	stream := func(world int) error {
		_, err := RunOn(platform.EC2(), np, func(c *Comm) error {
			r := c.Rank()
			right, left := (r+1)%np, (r+np-1)%np
			buf := make([]float64, n)
			got := make([]float64, n)
			for round := 0; round < rounds; round++ {
				stamp := float64(world<<20 | r<<10 | round)
				for i := range buf {
					buf[i] = stamp + float64(i)/1024
				}
				c.Send(right, 42, buf)
				c.Recv(left, 42, got)
				wantStamp := float64(world<<20 | left<<10 | round)
				for i, v := range got {
					if want := wantStamp + float64(i)/1024; v != want {
						return fmt.Errorf("world %d rank %d round %d: element %d = %v, want %v (pool buffer corrupted)",
							world, r, round, i, v, want)
					}
				}
			}
			return nil
		})
		return err
	}

	var wg sync.WaitGroup
	errs := make([]error, worlds)
	wg.Add(worlds)
	for i := 0; i < worlds; i++ {
		i := i
		go func() {
			defer wg.Done()
			errs[i] = stream(i)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("world %d: %v", i, err)
		}
	}
}

// TestRendezvousThresholdKnob pins the knob's contract: negative clamps
// to 0, the previous value round-trips, and large payloads take the
// exact-size path (capacity == length, no power-of-two padding).
func TestRendezvousThresholdKnob(t *testing.T) {
	prev := SetRendezvousBytes(-5)
	if got := RendezvousBytes(); got != 0 {
		t.Errorf("negative threshold clamps to 0, got %d", got)
	}
	if back := SetRendezvousBytes(prev); back != 0 {
		t.Errorf("swap returned %d, want 0", back)
	}
	if got := RendezvousBytes(); got != prev {
		t.Errorf("threshold not restored: %d != %d", got, prev)
	}

	withRendezvous(1024, func() {
		small := grownF64(nil, 10) // 80 B: pooled, power-of-two capacity
		if cap(small) != 16 {
			t.Errorf("pooled capacity = %d, want 16", cap(small))
		}
		big := grownF64(nil, 200) // 1600 B ≥ threshold: exact size
		if cap(big) != 200 {
			t.Errorf("rendezvous capacity = %d, want exact 200", cap(big))
		}
	})
}
