package mpi

import (
	"sync"
	"sync/atomic"
)

// The pooled message plane. Every point-to-point payload used to be
// copied into a fresh heap allocation per Send and dropped to the GC
// after the matching Recv; under the heavy collective traffic of the
// figure sweeps that allocation churn dominated the simulator's real
// (wall-clock) cost. Messages now travel in pooled envelopes whose
// payload buffers are leased at send time and recycled at
// receive-completion, so the steady-state hot path allocates nothing.
//
// Ownership transfer: a payload buffer belongs to the sending rank only
// until put() publishes the message, then exclusively to the receiving
// rank, which releases it back to the pool after consuming it. The
// sync.Pool provides the happens-before edge between the releasing and
// the next leasing rank, so recycled buffers are race-free even across
// worlds.
//
// Rendezvous threshold: payloads at or above RendezvousBytes are
// allocated exactly-sized and are dropped to the GC on release instead
// of being retained by an envelope — large transfers get the one
// mandatory copy each way without pinning megabytes in the pool,
// mirroring the eager/rendezvous split of real MPI transports. Setting
// the threshold to 0 disables pooling entirely (every payload and
// envelope allocated fresh), which the equivalence tests use as the
// reference behaviour.

// payloadKind discriminates a message's typed payload.
type payloadKind uint8

const (
	payloadNone payloadKind = iota // phantom (size-only) message
	payloadF64
	payloadInt
	payloadCplx
)

// String names the payload type the way receive-mismatch panics report it.
func (k payloadKind) String() string {
	switch k {
	case payloadNone:
		return "phantom"
	case payloadF64:
		return "[]float64"
	case payloadInt:
		return "[]int"
	case payloadCplx:
		return "[]complex128"
	}
	return "unknown"
}

// DefaultRendezvousBytes is the default eager/rendezvous cutover: 1 MiB,
// comfortably above every collective round and halo exchange in the
// reproduced workloads.
const DefaultRendezvousBytes = 1 << 20

var rendezvousBytes atomic.Int64

func init() { rendezvousBytes.Store(DefaultRendezvousBytes) }

// RendezvousBytes returns the current eager/rendezvous threshold in
// bytes: payloads at or above it bypass the buffer pool (exact-size
// allocation, ownership-transferred and GC-reclaimed); payloads below it
// ride recycled pool buffers. 0 means pooling is disabled.
func RendezvousBytes() int64 { return rendezvousBytes.Load() }

// SetRendezvousBytes sets the threshold and returns the previous value.
// n <= 0 disables the message pool entirely. Safe to call concurrently
// with running worlds; in-flight messages keep the policy they were sent
// under.
func SetRendezvousBytes(n int64) int64 {
	if n < 0 {
		n = 0
	}
	return rendezvousBytes.Swap(n)
}

// msgPool recycles message envelopes together with their payload
// capacity: an envelope that carried a 1 KiB payload comes back with
// that buffer ready to reuse, so a steady stream of same-sized messages
// reaches zero allocations after warm-up.
var msgPool = sync.Pool{New: func() any { return &message{fresh: true} }}

// newMessage leases an envelope (and whatever payload capacity it
// retained) from the pool. fresh reports whether the pool had to
// allocate (a pool miss); release clears the flag, so recycled
// envelopes come back with it unset.
func newMessage() (m *message, fresh bool) {
	if rendezvousBytes.Load() <= 0 {
		//lint:allow reprolint/allochot pooling-disabled fallback; budget-gated runs always pool
		return new(message), true
	}
	//lint:allow reprolint/allochot pool miss allocates once via New; steady state recycles envelopes
	m = msgPool.Get().(*message)
	fresh = m.fresh
	m.fresh = false
	return m, fresh
}

// release recycles the envelope after the receiver has fully consumed
// the payload. The caller must not touch m afterwards. Buffers at or
// above the rendezvous threshold are shed to the GC so the pool never
// pins large transfers.
func (m *message) release() {
	rv := rendezvousBytes.Load()
	if rv <= 0 {
		return
	}
	f64, ints, cplx := m.f64, m.ints, m.cplx
	if int64(cap(f64))*8 >= rv {
		f64 = nil
	}
	if int64(cap(ints))*8 >= rv {
		ints = nil
	}
	if int64(cap(cplx))*16 >= rv {
		cplx = nil
	}
	*m = message{f64: f64[:0], ints: ints[:0], cplx: cplx[:0]}
	msgPool.Put(m)
}

// roundCap sizes a fresh payload allocation: power-of-two rounded below
// the rendezvous threshold (so slightly varying sizes reuse one pooled
// buffer), exact at or above it (ownership-transfer size, never pooled).
func roundCap(n, elemBytes int) int {
	if int64(n)*int64(elemBytes) >= rendezvousBytes.Load() {
		return n
	}
	c := 8
	for c < n {
		c <<= 1
	}
	return c
}

// grownF64 resizes buf to n elements, reallocating only when the
// retained capacity is short.
func grownF64(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	//lint:allow reprolint/allochot cap-guarded doubling; reallocation amortises across messages
	return make([]float64, n, roundCap(n, 8))
}

func grownInt(buf []int, n int) []int {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]int, n, roundCap(n, 8))
}

func grownCplx(buf []complex128, n int) []complex128 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]complex128, n, roundCap(n, 16))
}

// scratchPool recycles the per-reduction float64 temporaries of the
// collectives (reduce-scatter accumulators, scan prefixes, int-reduction
// staging) across rounds and calls. Callers must fully overwrite the
// leased slice before reading it.
var scratchPool = sync.Pool{New: func() any { return new([]float64) }}

func leaseScratch(n int) *[]float64 {
	p := scratchPool.Get().(*[]float64)
	*p = grownF64(*p, n)
	return p
}

func releaseScratch(p *[]float64) { scratchPool.Put(p) }

// intScratchPool recycles []int temporaries (Alltoallv displacement
// tables).
var intScratchPool = sync.Pool{New: func() any { return new([]int) }}

func leaseIntScratch(n int) *[]int {
	p := intScratchPool.Get().(*[]int)
	*p = grownInt(*p, n)
	return p
}

func releaseIntScratch(p *[]int) { intScratchPool.Put(p) }
