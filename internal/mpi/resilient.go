package mpi

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/fault"
)

// ErrRankFailed is matched (via errors.Is) by every failure error the
// runtime returns when a fault plan preempts a node.
var ErrRankFailed = errors.New("mpi: rank failed")

// errPeerFailed is assigned to surviving ranks unwound by the
// post-failure abort; World.Run reports the originating failure instead.
var errPeerFailed = fmt.Errorf("aborted after peer failure: %w", ErrRankFailed)

// RankFailedError reports a node preemption from the fault plan: the
// first rank to hit its scheduled death, the node that was preempted
// (taking all of its ranks with it), and the virtual time of the event.
type RankFailedError struct {
	Rank int
	Node int
	At   float64 // virtual seconds
}

// Error implements error.
func (e *RankFailedError) Error() string {
	return fmt.Sprintf("mpi: rank %d lost (node %d preempted at t=%.3fs)", e.Rank, e.Node, e.At)
}

// Is matches the ErrRankFailed sentinel.
func (e *RankFailedError) Is(target error) bool { return target == ErrRankFailed }

// resilState is the durable checkpoint store shared by every incarnation
// of a resilient run. Commits are append-only and monotone in step.
type resilState struct {
	mu    sync.Mutex
	steps []int
	times []float64
}

// commit records a completed checkpoint. Every rank of the world calls
// this with identical arguments as it leaves the checkpoint collective;
// the first call stores, the rest are no-ops.
func (rs *resilState) commit(step int, at float64) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if n := len(rs.steps); n > 0 && rs.steps[n-1] >= step {
		return
	}
	rs.steps = append(rs.steps, step)
	rs.times = append(rs.times, at)
}

// restore returns the most recent checkpoint that was durable by virtual
// time `before` (0, 0 when none): a checkpoint whose commit completed
// after the failure cannot be restored from.
func (rs *resilState) restore(before float64) (step int, at float64) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for i := len(rs.steps) - 1; i >= 0; i-- {
		if rs.times[i] <= before {
			return rs.steps[i], rs.times[i]
		}
	}
	return 0, 0
}

func (rs *resilState) count() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return len(rs.steps)
}

// Checkpoint writes a rank-level application checkpoint after completing
// `step` timesteps: every rank of the communicator writes its shard of
// `bytes` through the platform's shared-filesystem model (write plus
// durability commit — Lustre vs NFS checkpoint cost is a platform
// difference the fault experiments measure), then the ranks agree on the
// commit time and synchronise to it. Under RunResilient a later failure
// restarts from the last committed checkpoint; under plain Run the cost
// is still charged but nothing is recorded. Collective: every rank must
// call it with the same arguments.
func (c *Comm) Checkpoint(step int, bytes int64) {
	if step <= 0 {
		panic(fmt.Sprintf("mpi: checkpoint step %d must be positive", step))
	}
	if bytes < 0 {
		panic("mpi: negative checkpoint size")
	}
	w := c.st.world
	writers := c.Size()
	shard := bytes / int64(writers)
	c.advance("io", w.Platform.FS.WriteSeconds(shard, writers))
	c.advance("io", w.Platform.FS.CommitSeconds(writers))
	w.met.ckptBytes.Add(shard)
	// The checkpoint is durable only when the slowest shard is written;
	// agree on that time and barrier-align every rank to it.
	t := []float64{c.st.clock}
	c.Allreduce(Max, t)
	if t[0] > c.st.clock {
		w.met.commitStallNS.AddSeconds(t[0] - c.st.clock)
		c.st.clock = t[0]
	}
	if w.resil != nil {
		w.resil.commit(step, t[0])
	}
}

// ResumeStep returns the application timestep to resume from: 0 on a
// fresh start, or the last durable Checkpoint step after a restart.
// Applications with checkpoint hooks start their timestep loop here.
func (c *Comm) ResumeStep() int { return c.st.world.resumeStep }

// Incarnation returns how many times this world has been restarted
// (0 for the first attempt).
func (w *World) Incarnation() int { return w.incarnation }

// ResilientConfig configures RunResilient.
type ResilientConfig struct {
	// Plan supplies the fault schedule (nil or empty: no faults, and the
	// run is bit-identical to plain Run).
	Plan *fault.Plan
	// RestartDelay is the virtual seconds between a failure and the
	// restarted incarnation's ranks starting (re-queue, boot, reread
	// input). Default 30s.
	RestartDelay float64
	// MaxRestarts bounds the number of restarts before giving up
	// (default 64).
	MaxRestarts int
	// NewTracer, when set, supplies a fresh tracer per incarnation
	// (incarnation 0 is the first attempt). Without it the world's
	// original tracer observes every incarnation, including discarded
	// work.
	NewTracer func(incarnation int) Tracer
}

// ResilientStats accounts the overhead of running under failures.
type ResilientStats struct {
	Restarts        int       // completed restarts
	Checkpoints     int       // committed checkpoints
	LostWork        float64   // virtual seconds of progress discarded per rank
	RestartOverhead float64   // virtual seconds spent restarting
	Failures        []Failure // every preemption that killed an incarnation
}

// Failure is one fatal preemption of a resilient run.
type Failure struct {
	Rank int
	Node int
	At   float64
}

// RunResilient executes fn under the fault plan with checkpoint/restart:
// when a node preemption kills the world, a fresh incarnation starts
// RestartDelay virtual seconds after the failure and resumes from the
// last durable Checkpoint (step 0 when none). The returned Result is the
// completing incarnation's; its clocks include all failed attempts and
// restart delays, so Result.Time is the job's true time-to-solution.
func (w *World) RunResilient(cfg ResilientConfig, fn func(c *Comm) error) (*Result, *ResilientStats, error) {
	if cfg.RestartDelay <= 0 {
		cfg.RestartDelay = 30
	}
	if cfg.MaxRestarts <= 0 {
		cfg.MaxRestarts = 64
	}
	stats := &ResilientStats{}
	rs := &resilState{}
	start, resume := 0.0, 0
	for inc := 0; ; inc++ {
		iw := &World{
			Platform:    w.Platform,
			Placement:   w.Placement,
			np:          w.np,
			tracer:      w.tracer,
			seed:        w.seed,
			timeout:     w.timeout,
			runtime:     w.runtime,
			engWorkers:  w.engWorkers,
			met:         w.met,
			resil:       rs,
			incStart:    start,
			resumeStep:  resume,
			incarnation: inc,
		}
		if !cfg.Plan.Empty() {
			iw.faults = cfg.Plan
		}
		if cfg.NewTracer != nil {
			iw.tracer = cfg.NewTracer(inc)
		}
		iw.inboxes = leaseInboxes(iw.np)
		res, err := iw.Run(fn)
		if err == nil {
			stats.Checkpoints = rs.count()
			w.met.checkpoints.Add(int64(stats.Checkpoints))
			iw.Release()
			return res, stats, nil
		}
		var rf *RankFailedError
		if !errors.As(err, &rf) {
			return nil, stats, err
		}
		stats.Failures = append(stats.Failures, Failure{Rank: rf.Rank, Node: rf.Node, At: rf.At})
		if inc+1 > cfg.MaxRestarts {
			stats.Checkpoints = rs.count()
			return nil, stats, fmt.Errorf("mpi: gave up after %d restarts: %w", cfg.MaxRestarts, rf)
		}
		step, at := rs.restore(rf.At)
		stats.LostWork += rf.At - math.Max(at, start)
		stats.RestartOverhead += cfg.RestartDelay
		stats.Restarts++
		w.met.restarts.Inc()
		w.met.lostWorkNS.AddSeconds(rf.At - math.Max(at, start))
		w.met.restartOverheadNS.AddSeconds(cfg.RestartDelay)
		start = rf.At + cfg.RestartDelay
		resume = step
	}
}
