// Package mpi implements a message-passing runtime in the style of MPI,
// executing on a modelled cluster platform under virtual time.
//
// Ranks are goroutines; point-to-point messages really move data between
// them (eager protocol with source/tag matching), and collectives are
// implemented algorithmically over point-to-point, so communication volume
// and round counts match a real MPI library. Time, however, is virtual:
// each rank carries a clock that advances by modelled computation cost
// (package cpumodel), message injection/flight cost (package netmodel) and
// I/O cost (package iomodel). Because every inter-rank dependency flows
// through a real message that carries its virtual arrival time, the
// resulting timestamps form a causally consistent conservative
// discrete-event simulation.
//
// Misuse (rank out of range, type-mismatched receive, truncation) panics
// with a descriptive message, mirroring MPI's error-aborts; World.Run
// recovers per-rank panics into errors.
package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/platform"
	"repro/internal/sim"
)

// Tracer observes per-rank activity. Implementations must tolerate
// concurrent calls for different ranks; calls for one rank are sequential.
type Tracer interface {
	// Call records one completed communication operation.
	Call(rank int, rec CallRecord)
	// Advance records non-communication virtual time (kind is "compute" or
	// "io") spent by rank starting at start.
	Advance(rank int, kind string, start, dur float64)
	// Region notes that rank entered the named profiling region at time at.
	Region(rank int, name string, at float64)
}

// CallRecord describes one completed communication operation.
type CallRecord struct {
	Name   string  // operation name, e.g. "Send", "Allreduce"
	Bytes  int     // payload bytes (per-rank contribution for collectives)
	Start  float64 // virtual time at call entry
	Dur    float64 // virtual duration of the call
	Region string  // profiling region active during the call

	// Wait is the virtual time this rank sat blocked inside the call
	// waiting for messages to arrive (summed over the receives of a
	// collective); Queued is how long arrived messages sat unmatched
	// before the receive was posted. Both derive from arrival times the
	// runtime already computes, so they change no clock math. Peer is
	// the world rank responsible for the largest single wait, or -1 if
	// the call never blocked.
	Wait   float64
	Queued float64
	Peer   int
}

// World is a communicator universe: np ranks placed on a platform.
type World struct {
	Platform  *platform.Platform
	Placement *cluster.Placement

	np      int
	inboxes []*inbox
	tracer  Tracer
	seed    uint64
	timeout time.Duration

	runtime    Runtime      // execution engine (Goroutine or PDES)
	engWorkers int          // PDES concurrency bound; <= 0 = GOMAXPROCS
	eng        atomic.Value // *pdes.Engine for the Run in flight (PDES only)
	dl         deadlock     // engine-detected deadlock diagnosis

	met worldMetrics // observability handles; zero value = metering off

	faults      *fault.Plan // nil = no fault injection
	incStart    float64     // virtual time at which this incarnation's clocks start
	resumeStep  int         // application step to resume from (0 = fresh start)
	incarnation int         // restart count of this incarnation
	resil       *resilState // checkpoint store shared across incarnations
	sb          scoreboard  // rank liveness, for deterministic post-failure abort
}

// scoreboard tracks how many ranks can still make progress. After a rank
// failure the world is aborted only once every surviving rank is blocked
// in a receive (quiescent): at that point no message can ever arrive, so
// the set of operations each rank completed is the unique maximal one —
// which is what makes checkpoint state deterministic despite the
// real-time races between goroutines.
type scoreboard struct {
	mu       sync.Mutex
	running  int
	failed   bool
	failRank int
	failNode int
	failAt   float64
}

// enterBlocked marks a rank as blocked in a receive; called with the
// rank's inbox lock held (lock order: inbox.mu, then scoreboard.mu).
func (w *World) enterBlocked() {
	w.sb.mu.Lock()
	w.sb.running--
	quiesce := w.sb.failed && w.sb.running == 0
	w.sb.mu.Unlock()
	if quiesce {
		// abortAll takes inbox locks, which may include the one held by
		// this caller; run it from a clean goroutine.
		//lint:allow reprolint/allochot failure quiesce only; a healthy hot path never reaches it
		go w.abortAll()
	}
}

// exitBlocked marks a rank runnable again after its receive matched (or
// before it unwinds from an abort).
func (w *World) exitBlocked() {
	w.sb.mu.Lock()
	w.sb.running++
	w.sb.mu.Unlock()
}

// rankStopped records that a rank's goroutine finished (normally, by
// dying, or by unwinding from an abort).
func (w *World) rankStopped() {
	w.sb.mu.Lock()
	w.sb.running--
	quiesce := w.sb.failed && w.sb.running == 0
	w.sb.mu.Unlock()
	if quiesce {
		go w.abortAll()
	}
}

// markFailed records a rank death. When several ranks die in one
// incarnation (node-mates of the preempted node, or a second node whose
// preemption fires before the world quiesces), the earliest *virtual*
// death — tie-broken by rank — is the canonical failure, regardless of
// the real-time order the dying goroutines happened to get scheduled
// in. The restart point derives from this identity, so it must be
// deterministic.
func (w *World) markFailed(rank, node int, at float64) {
	w.met.ranksLost.Inc()
	w.sb.mu.Lock()
	if !w.sb.failed || at < w.sb.failAt || (at == w.sb.failAt && rank < w.sb.failRank) {
		w.sb.failed = true
		w.sb.failRank, w.sb.failNode, w.sb.failAt = rank, node, at
	}
	w.sb.mu.Unlock()
}

// abortAll wakes every blocked receiver with the abort flag set. Safe to
// call multiple times.
func (w *World) abortAll() {
	for _, b := range w.inboxes {
		b.mu.Lock()
		b.aborted = true
		b.mu.Unlock()
		b.cond.Broadcast()
	}
	if eng := w.engine(); eng != nil {
		// Parked PDES ranks sleep in the engine, not on the inbox conds;
		// requeue all of them so each re-checks its inbox and unwinds.
		eng.WakeAll()
	}
}

// Option configures a World.
type Option func(*World)

// WithTracer attaches a tracer (e.g. the IPM profiler).
func WithTracer(t Tracer) Option { return func(w *World) { w.tracer = t } }

// WithSeed offsets all random streams, giving independent repetitions of
// the same experiment (the paper runs each benchmark 5 times).
func WithSeed(s uint64) Option { return func(w *World) { w.seed = s } }

// WithTimeout bounds the real (wall-clock) execution time of Run; a run
// exceeding it returns an error. The default is 5 minutes.
func WithTimeout(d time.Duration) Option { return func(w *World) { w.timeout = d } }

// WithFaults injects a deterministic fault plan: per-rank compute
// throttles, inter-node link degradation windows and node preemptions.
// A preempted node's ranks die at their scheduled virtual time and Run
// returns a *RankFailedError; RunResilient additionally restarts the
// world from its last checkpoint. A nil or empty plan changes nothing.
func WithFaults(p *fault.Plan) Option {
	return func(w *World) {
		if !p.Empty() {
			w.faults = p
		}
	}
}

// NewWorld creates a world of pl.NP ranks on p.
func NewWorld(p *platform.Platform, pl *cluster.Placement, opts ...Option) (*World, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if pl == nil || pl.NP <= 0 {
		return nil, fmt.Errorf("mpi: placement with at least one rank required")
	}
	w := &World{
		Platform:  p,
		Placement: pl,
		np:        pl.NP,
		timeout:   5 * time.Minute,
	}
	for _, o := range opts {
		o(w)
	}
	w.inboxes = leaseInboxes(w.np)
	return w, nil
}

// Release returns the world's pooled resources (inboxes and their bucket
// structures) for reuse by future worlds. The world is unusable
// afterwards. Only clean inboxes are recycled — a world holding
// unmatched messages or unwound by an abort sheds its inboxes to the GC
// instead. RunOn, core.Execute and the resilient loop release completed
// worlds automatically; long-lived worlds that are Run repeatedly simply
// never call it.
func (w *World) Release() {
	releaseInboxes(w.inboxes)
	w.inboxes = nil
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.np }

// Result summarises one completed run.
type Result struct {
	// Time is the job's virtual wall time: the maximum over ranks of the
	// final clock (all ranks start at 0).
	Time float64
	// RankTimes holds each rank's final virtual clock.
	RankTimes sim.Series
	// CommTimes, ComputeTimes and IOTimes hold each rank's accumulated
	// virtual time by activity.
	CommTimes    sim.Series
	ComputeTimes sim.Series
	IOTimes      sim.Series
}

// Run executes fn once per rank and returns the aggregated result. Any
// rank returning an error or panicking fails the whole run.
func (w *World) Run(fn func(c *Comm) error) (*Result, error) {
	// Per-rank state is carved out of two contiguous slabs: one Run of an
	// np-rank world costs two allocations for all its communicator
	// handles instead of 2*np, which is what the world-churn benchmark
	// measures.
	states := make([]rankState, w.np)
	comms := make([]Comm, w.np)
	group := make([]int, w.np)
	for r := 0; r < w.np; r++ {
		group[r] = r
	}
	for r := 0; r < w.np; r++ {
		initComm(&comms[r], &states[r], w, r, group)
	}
	w.dl.mu.Lock()
	w.dl.err = nil
	w.dl.mu.Unlock()
	if w.runtime == PDES {
		w.startEngine()
	}
	eng := w.engine()

	errs := make([]error, w.np)
	w.sb.mu.Lock()
	w.sb.running = w.np
	w.sb.mu.Unlock()
	var wg sync.WaitGroup
	wg.Add(w.np)
	for r := 0; r < w.np; r++ {
		go func(rank int) {
			defer wg.Done()
			defer func() {
				p := recover()
				w.rankStopped()
				if eng != nil {
					eng.Done(rank)
				}
				switch p.(type) {
				case nil:
				case killPanic:
					errs[rank] = &RankFailedError{
						Rank: rank, Node: w.Placement.NodeOf[rank], At: comms[rank].st.clock,
					}
				case abortPanic:
					errs[rank] = errPeerFailed
				default:
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, p)
				}
			}()
			if eng != nil {
				eng.Enter(rank)
			}
			errs[rank] = fn(&comms[rank])
		}(r)
	}
	if eng != nil {
		eng.Go()
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	//lint:allow reprolint/detwall real-time watchdog: fires only on deadlock, never contributes to virtual time
	case <-time.After(w.timeout):
		return nil, fmt.Errorf("mpi: run exceeded real-time limit %v (likely deadlock)", w.timeout)
	}

	w.sb.mu.Lock()
	failed, failRank, failNode, failAt := w.sb.failed, w.sb.failRank, w.sb.failNode, w.sb.failAt
	w.sb.mu.Unlock()
	if failed {
		return nil, &RankFailedError{Rank: failRank, Node: failNode, At: failAt}
	}
	if dlerr := w.deadlockErr(); dlerr != nil {
		return nil, dlerr
	}
	for r, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("mpi: rank %d: %w", r, err)
		}
	}

	res := &Result{
		RankTimes:    make(sim.Series, w.np),
		CommTimes:    make(sim.Series, w.np),
		ComputeTimes: make(sim.Series, w.np),
		IOTimes:      make(sim.Series, w.np),
	}
	for r, c := range comms {
		res.RankTimes[r] = c.st.clock
		res.CommTimes[r] = c.st.commTime
		res.ComputeTimes[r] = c.st.computeTime
		res.IOTimes[r] = c.st.ioTime
	}
	res.Time = res.RankTimes.Max()
	return res, nil
}

// RunOn is a convenience wrapper: place np ranks on p with the Block
// policy and run fn.
func RunOn(p *platform.Platform, np int, fn func(c *Comm) error, opts ...Option) (*Result, error) {
	pl, err := cluster.Place(p, cluster.Spec{NP: np})
	if err != nil {
		return nil, err
	}
	w, err := NewWorld(p, pl, opts...)
	if err != nil {
		return nil, err
	}
	res, err := w.Run(fn)
	if err == nil {
		w.Release()
	}
	return res, err
}

// tee fans tracer callbacks out to multiple tracers.
type tee []Tracer

// Tee combines tracers (e.g. the IPM profiler plus a timeline recorder)
// into one. Nil entries are skipped.
func Tee(tracers ...Tracer) Tracer {
	var ts tee
	for _, t := range tracers {
		if t != nil {
			ts = append(ts, t)
		}
	}
	return ts
}

// Call implements Tracer.
func (ts tee) Call(rank int, rec CallRecord) {
	for _, t := range ts {
		t.Call(rank, rec)
	}
}

// Advance implements Tracer.
func (ts tee) Advance(rank int, kind string, start, dur float64) {
	for _, t := range ts {
		t.Advance(rank, kind, start, dur)
	}
}

// Region implements Tracer.
func (ts tee) Region(rank int, name string, at float64) {
	for _, t := range ts {
		t.Region(rank, name, at)
	}
}

// Pending returns the number of sent-but-unmatched messages across all
// ranks. After a well-formed program completes it must be zero: every
// send was received. Useful as a post-run invariant check.
func (w *World) Pending() int {
	n := 0
	for _, b := range w.inboxes {
		n += b.pending()
	}
	return n
}
