package mpi

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/cpumodel"
	"repro/internal/platform"
)

func TestClockStartsAtZeroAndAdvances(t *testing.T) {
	run(t, platform.Vayu(), 1, func(c *Comm) error {
		if c.Clock() != 0 {
			return fmt.Errorf("initial clock = %v", c.Clock())
		}
		c.ComputeSeconds(2.5)
		if c.Clock() != 2.5 {
			return fmt.Errorf("clock after 2.5s compute = %v", c.Clock())
		}
		return nil
	})
}

func TestComputeChargesModelledTime(t *testing.T) {
	p := platform.Vayu()
	p.ComputeJitter.Sigma = 0 // exact check
	res, err := RunOn(p, 1, func(c *Comm) error {
		c.Compute(cpumodel.Work{Flops: 1e9})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 1e9 / (2.93e9 * 4 * p.CPU.Efficiency)
	if math.Abs(res.Time-want)/want > 1e-9 {
		t.Fatalf("1 GFlop took %v, want %v", res.Time, want)
	}
}

func TestMessageRespectsLatency(t *testing.T) {
	// A cross-node message cannot arrive before one link latency.
	p := platform.Vayu()
	pl, err := cluster.Place(p, cluster.Spec{NP: 16}) // 2 nodes
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	times := make([]float64, 16)
	if _, err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.SendN(15, 0, 8) // rank 15 is on node 1
		} else if c.Rank() == 15 {
			c.RecvN(0, 0)
			times[15] = c.Clock()
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if times[15] < p.Inter.Latency {
		t.Fatalf("message arrived at %v, before link latency %v", times[15], p.Inter.Latency)
	}
}

func TestIntraNodeFasterThanInterNode(t *testing.T) {
	p := platform.DCC()
	pingpong := func(np int, peer int) float64 {
		var elapsed float64
		res, err := RunOn(p, np, func(c *Comm) error {
			const iters = 100
			buf := make([]float64, 128)
			if c.Rank() == 0 {
				start := c.Clock()
				for i := 0; i < iters; i++ {
					c.Send(peer, 0, buf)
					c.Recv(peer, 1, buf)
				}
				elapsed = c.Clock() - start
			} else if c.Rank() == peer {
				for i := 0; i < iters; i++ {
					c.Recv(0, 0, buf)
					c.Send(0, 1, buf)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		_ = res
		return elapsed
	}
	intra := pingpong(2, 1)   // both ranks on node 0
	inter := pingpong(16, 15) // rank 15 on node 1
	if intra*5 > inter {
		t.Fatalf("intra-node ping-pong (%v) should be far faster than inter-node (%v)", intra, inter)
	}
}

func TestDeterministicVirtualTime(t *testing.T) {
	// Same experiment twice: identical virtual times despite goroutine
	// scheduling differences.
	exp := func() []float64 {
		res, err := RunOn(platform.DCC(), 16, func(c *Comm) error {
			for i := 0; i < 20; i++ {
				c.Compute(cpumodel.Work{Flops: 1e7})
				c.AllreduceN(8)
			}
			data := make([]float64, 64)
			c.Allreduce(Sum, data)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.RankTimes
	}
	a, b := exp(), exp()
	for r := range a {
		if a[r] != b[r] {
			t.Fatalf("rank %d time differs across identical runs: %v vs %v", r, a[r], b[r])
		}
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	p := platform.DCC()
	pl, err := cluster.Place(p, cluster.Spec{NP: 16})
	if err != nil {
		t.Fatal(err)
	}
	runSeed := func(seed uint64) float64 {
		w, err := NewWorld(p, pl, WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		res, err := w.Run(func(c *Comm) error {
			for i := 0; i < 10; i++ {
				c.AllreduceN(8)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	if runSeed(1) == runSeed(2) {
		t.Fatal("different seeds should perturb jittered timings")
	}
}

func TestCommTimeAccounting(t *testing.T) {
	res, err := RunOn(platform.DCC(), 16, func(c *Comm) error {
		c.Compute(cpumodel.Work{Flops: 1e8})
		for i := 0; i < 5; i++ {
			c.AllreduceN(8)
		}
		c.ReadShared(1<<20, 16)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 16; r++ {
		wall := res.RankTimes[r]
		sum := res.CommTimes[r] + res.ComputeTimes[r] + res.IOTimes[r]
		if res.CommTimes[r] <= 0 || res.ComputeTimes[r] <= 0 || res.IOTimes[r] <= 0 {
			t.Fatalf("rank %d: some activity time is zero: %+v", r, res)
		}
		if sum > wall*(1+1e-9) {
			t.Fatalf("rank %d: activities (%v) exceed wall (%v)", r, sum, wall)
		}
	}
}

func TestAllreduceLatencyBoundCrossPlatform(t *testing.T) {
	// An 8-byte allreduce across 4 nodes must be far cheaper on Vayu than
	// on DCC — the core finding behind the KSp section analysis.
	cost := func(p *platform.Platform, np int) float64 {
		res, err := RunOn(p, np, func(c *Comm) error {
			for i := 0; i < 50; i++ {
				c.AllreduceN(8)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Time / 50
	}
	v := cost(platform.Vayu(), 32)
	d := cost(platform.DCC(), 32)
	if d < 5*v {
		t.Fatalf("32-rank tiny allreduce: DCC %v vs Vayu %v; want DCC >> Vayu", d, v)
	}
}

func TestOversubscriptionSlowsCompute(t *testing.T) {
	// 16 ranks on one EC2 node (HT oversubscription) vs 16 ranks spread
	// over 4 nodes: per-rank compute must be markedly slower when
	// oversubscribed.
	p := platform.EC2()
	p.ComputeJitter.Sigma = 0
	p.ComputeJitter.SpikeProb = 0
	timeFor := func(nodes int, policy cluster.Policy) float64 {
		pl, err := cluster.Place(p, cluster.Spec{NP: 16, Nodes: nodes, Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		w, err := NewWorld(p, pl)
		if err != nil {
			t.Fatal(err)
		}
		res, err := w.Run(func(c *Comm) error {
			c.Compute(cpumodel.Work{Flops: 1e9})
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	packed := timeFor(1, cluster.Block)
	spread := timeFor(4, cluster.Spread)
	if ratio := packed / spread; ratio < 1.5 {
		t.Fatalf("oversubscribed/spread compute ratio = %v, want >= 1.5", ratio)
	}
}

func TestNUMAMaskingSlowsMemoryBoundOnDCC(t *testing.T) {
	// Memory-bound work crossing the socket boundary is slower on DCC
	// (hypervisor masks NUMA) than on Vayu with affinity, beyond the
	// clock-ratio difference — the paper's CG-at-8-processes effect.
	mem := cpumodel.Work{Bytes: 1e9}
	timeFor := func(p *platform.Platform) float64 {
		p.ComputeJitter.Sigma = 0
		p.ComputeJitter.SpikeProb = 0
		res, err := RunOn(p, 8, func(c *Comm) error {
			c.Compute(mem)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	d := timeFor(platform.DCC())
	v := timeFor(platform.Vayu())
	if ratio := d / v; ratio < 1.4 {
		t.Fatalf("DCC/Vayu memory-bound ratio at 8 ranks = %v, want >= 1.4 (NUMA penalty)", ratio)
	}
}

type recordingTracer struct {
	mu      sync.Mutex
	calls   []CallRecord
	regions []string
}

func (rt *recordingTracer) Call(rank int, rec CallRecord) {
	rt.mu.Lock()
	rt.calls = append(rt.calls, rec)
	rt.mu.Unlock()
}

func (rt *recordingTracer) Advance(rank int, kind string, start, dur float64) {}

func (rt *recordingTracer) Region(rank int, name string, at float64) {
	rt.mu.Lock()
	rt.regions = append(rt.regions, name)
	rt.mu.Unlock()
}

func TestTracerSeesCollectivesNotInternals(t *testing.T) {
	tr := &recordingTracer{}
	pl, err := cluster.Place(platform.Vayu(), cluster.Spec{NP: 8})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(platform.Vayu(), pl, WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(func(c *Comm) error {
		c.Region("solve")
		data := make([]float64, 1)
		c.Allreduce(Sum, data)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(tr.calls) != 8 {
		t.Fatalf("got %d call records, want 8 (one Allreduce per rank, internals suppressed)", len(tr.calls))
	}
	for _, rec := range tr.calls {
		if rec.Name != "Allreduce" {
			t.Fatalf("unexpected traced call %q", rec.Name)
		}
		if rec.Region != "solve" {
			t.Fatalf("call region = %q, want solve", rec.Region)
		}
		if rec.Dur < 0 {
			t.Fatalf("negative duration %v", rec.Dur)
		}
	}
	if len(tr.regions) != 8 {
		t.Fatalf("got %d region events, want 8", len(tr.regions))
	}
}

func TestClockMonotonicThroughMixedOps(t *testing.T) {
	run(t, platform.EC2(), 8, func(c *Comm) error {
		last := c.Clock()
		step := func(what string) error {
			if c.Clock() < last {
				return fmt.Errorf("clock went backwards after %s: %v -> %v", what, last, c.Clock())
			}
			last = c.Clock()
			return nil
		}
		for i := 0; i < 10; i++ {
			c.Compute(cpumodel.Work{Flops: 1e6, Bytes: 1e6})
			if err := step("compute"); err != nil {
				return err
			}
			c.AllreduceN(8)
			if err := step("allreduce"); err != nil {
				return err
			}
			right := (c.Rank() + 1) % c.Size()
			left := (c.Rank() - 1 + c.Size()) % c.Size()
			c.SendrecvN(right, 2, 1024, left, 2)
			if err := step("sendrecv"); err != nil {
				return err
			}
		}
		return nil
	})
}

func TestNICSharingSlowsPackedNodes(t *testing.T) {
	// 8 ranks per node sharing one GigE NIC must see far less per-rank
	// bandwidth than 1 rank per node — the effect behind the paper's
	// DCC scaling collapse at np=16.
	p := platform.DCC()
	perRank := func(nodes int, np int) float64 {
		pl, err := cluster.Place(p, cluster.Spec{NP: np, Nodes: nodes, Policy: cluster.Spread})
		if err != nil {
			t.Fatal(err)
		}
		w, err := NewWorld(p, pl)
		if err != nil {
			t.Fatal(err)
		}
		// With Spread placement even ranks sit on node 0 and odd ranks on
		// node 1; pair each even rank with the next odd rank.
		elapsed := make([]float64, np)
		if _, err := w.Run(func(c *Comm) error {
			if c.Rank()%2 == 0 {
				start := c.Clock()
				c.SendN(c.Rank()+1, 0, 1<<20)
				c.RecvN(c.Rank()+1, 1)
				elapsed[c.Rank()] = c.Clock() - start
			} else {
				c.RecvN(c.Rank()-1, 0)
				c.SendN(c.Rank()-1, 1, 4)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		var mx float64
		for _, v := range elapsed {
			if v > mx {
				mx = v
			}
		}
		return mx
	}
	solo := perRank(2, 2)    // one rank per node
	packed := perRank(2, 16) // eight ranks per node
	if ratio := packed / solo; ratio < 4 {
		t.Fatalf("packed/solo transfer-time ratio = %v, want >= 4 (NIC sharing)", ratio)
	}
}
