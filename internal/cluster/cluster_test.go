package cluster

import (
	"testing"
	"testing/quick"

	"repro/internal/platform"
)

func TestBlockPlacementFillsNodes(t *testing.T) {
	p := platform.DCC() // 8 slots/node
	pl, err := Place(p, Spec{NP: 16})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Nodes != 2 {
		t.Fatalf("nodes = %d, want 2", pl.Nodes)
	}
	for r := 0; r < 8; r++ {
		if pl.NodeOf[r] != 0 {
			t.Fatalf("rank %d on node %d, want 0", r, pl.NodeOf[r])
		}
	}
	for r := 8; r < 16; r++ {
		if pl.NodeOf[r] != 1 {
			t.Fatalf("rank %d on node %d, want 1", r, pl.NodeOf[r])
		}
	}
}

func TestBlockPlacementSingleNode(t *testing.T) {
	p := platform.Vayu()
	pl, err := Place(p, Spec{NP: 8})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Nodes != 1 || pl.MaxRanksPerNode() != 8 {
		t.Fatalf("8 ranks should fill exactly one Vayu node, got %d nodes", pl.Nodes)
	}
}

func TestEC2SixteenRanksOneNode(t *testing.T) {
	// The paper: "the EC2 cluster drops in performance at 16 cores ... as
	// each compute node on EC2 cluster has 16 cores" — 16 ranks must land
	// on ONE node (oversubscribing the 8 physical cores).
	p := platform.EC2()
	pl, err := Place(p, Spec{NP: 16})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Nodes != 1 {
		t.Fatalf("16 ranks on EC2 use %d nodes, want 1", pl.Nodes)
	}
}

func TestSpreadPlacement(t *testing.T) {
	// The paper's EC2-4 configuration: processes evenly distributed
	// across 4 nodes.
	p := platform.EC2()
	pl, err := Place(p, Spec{NP: 32, Policy: Spread, Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Nodes != 4 {
		t.Fatalf("nodes = %d, want 4", pl.Nodes)
	}
	for n, cnt := range pl.RanksPerNode {
		if cnt != 8 {
			t.Fatalf("node %d holds %d ranks, want 8", n, cnt)
		}
	}
}

func TestPlacementErrors(t *testing.T) {
	p := platform.DCC()
	if _, err := Place(p, Spec{NP: 0}); err == nil {
		t.Error("zero ranks should fail")
	}
	if _, err := Place(p, Spec{NP: 65}); err == nil {
		t.Error("65 ranks on 64-slot DCC should fail")
	}
	if _, err := Place(p, Spec{NP: 32, Nodes: 2}); err == nil {
		t.Error("32 ranks forced onto 2 DCC nodes (16 slots) should fail")
	}
	if _, err := Place(p, Spec{NP: 8, Nodes: 100}); err == nil {
		t.Error("requesting more nodes than the platform has should fail")
	}
}

func TestMemoryConstraint(t *testing.T) {
	p := platform.EC2() // 20 GB/node
	// 16 ranks x 2 GB = 32 GB on one node: must fail.
	if _, err := Place(p, Spec{NP: 16, MemPerRank: 2 << 30}); err == nil {
		t.Error("memory-oversubscribed placement should fail")
	}
	// Same job on 2 nodes fits (8 x 2 GB = 16 GB <= 20 GB).
	if _, err := Place(p, Spec{NP: 16, MemPerRank: 2 << 30, Nodes: 2, Policy: Spread}); err != nil {
		t.Errorf("2-node placement should fit: %v", err)
	}
}

func TestMinNodesForReproducesMetUMConstraint(t *testing.T) {
	// MetUM on EC2 "could not be run on fewer than 2 nodes (for 24
	// processes, three nodes had to be used)". With a ~2.3 GB/rank model
	// footprint on 20 GB nodes:
	p := platform.EC2()
	gib := float64(int64(1) << 30)
	perRank := int64(2.3 * gib)
	n16, err := MinNodesFor(p, 16, perRank)
	if err != nil {
		t.Fatal(err)
	}
	if n16 < 2 {
		t.Errorf("16 ranks: min nodes = %d, want >= 2", n16)
	}
	n24, err := MinNodesFor(p, 24, perRank)
	if err != nil {
		t.Fatal(err)
	}
	if n24 != 3 {
		t.Errorf("24 ranks: min nodes = %d, want 3", n24)
	}
	if _, err := MinNodesFor(p, 64, 21<<30); err == nil {
		t.Error("job larger than any node should be infeasible")
	}
}

func TestPlacementInvariants(t *testing.T) {
	p := platform.Vayu()
	prop := func(npRaw uint8, policyRaw bool) bool {
		np := int(npRaw%64) + 1
		pol := Block
		if policyRaw {
			pol = Spread
		}
		pl, err := Place(p, Spec{NP: np, Policy: pol})
		if err != nil {
			return false
		}
		// Every rank is mapped; per-node counts agree with the map; no
		// node exceeds its slots.
		counts := make([]int, pl.Nodes)
		for r := 0; r < np; r++ {
			n := pl.NodeOf[r]
			if n < 0 || n >= pl.Nodes {
				return false
			}
			counts[n]++
		}
		for n := range counts {
			if counts[n] != pl.RanksPerNode[n] || counts[n] > p.SlotsPerNode() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSameNode(t *testing.T) {
	p := platform.DCC()
	pl, err := Place(p, Spec{NP: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !pl.SameNode(0, 7) {
		t.Error("ranks 0 and 7 should share node 0")
	}
	if pl.SameNode(7, 8) {
		t.Error("ranks 7 and 8 should be on different nodes")
	}
}

func TestPolicyString(t *testing.T) {
	if Block.String() != "block" || Spread.String() != "spread" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy should still render")
	}
}
