// Package cluster maps MPI ranks onto the nodes of a platform and checks
// resource feasibility (slot counts, per-node memory).
package cluster

import (
	"fmt"

	"repro/internal/platform"
)

// Policy selects how ranks are laid out across nodes.
type Policy int

const (
	// Block fills each node's slots before moving to the next node (the
	// default MPI behaviour on all three platforms in the paper).
	Block Policy = iota
	// Spread distributes ranks round-robin across the chosen node count,
	// used for the paper's "EC2-4" runs where processes were evenly
	// distributed over 4 nodes.
	Spread
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case Spread:
		return "spread"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Placement is an immutable assignment of np ranks to nodes.
type Placement struct {
	NP           int
	Nodes        int   // number of distinct nodes used
	NodeOf       []int // rank -> node index
	RanksPerNode []int // node index -> rank count
}

// Spec describes a placement request.
type Spec struct {
	NP     int
	Policy Policy
	// Nodes forces the number of nodes used (0 = minimum required for
	// Block, all needed for Spread). The paper's EC2-4 runs set Nodes=4.
	Nodes int
	// MemPerRank, when non-zero, is the per-rank memory requirement in
	// bytes, checked against the platform's per-node capacity.
	MemPerRank int64
}

// Place computes a placement of spec.NP ranks on p, or an error when the
// request does not fit.
func Place(p *platform.Platform, spec Spec) (*Placement, error) {
	if spec.NP <= 0 {
		return nil, fmt.Errorf("cluster: need at least one rank, got %d", spec.NP)
	}
	slots := p.SlotsPerNode()
	minNodes := (spec.NP + slots - 1) / slots
	nodes := spec.Nodes
	if nodes == 0 {
		nodes = minNodes
	}
	if nodes < minNodes {
		return nil, fmt.Errorf("cluster: %d ranks need at least %d nodes of %s (%d slots/node), got %d",
			spec.NP, minNodes, p.Name, slots, nodes)
	}
	if nodes > p.Nodes {
		return nil, fmt.Errorf("cluster: %s has %d nodes, placement needs %d", p.Name, p.Nodes, nodes)
	}
	if nodes > spec.NP {
		nodes = spec.NP
	}

	pl := &Placement{
		NP:           spec.NP,
		Nodes:        nodes,
		NodeOf:       make([]int, spec.NP),
		RanksPerNode: make([]int, nodes),
	}
	switch spec.Policy {
	case Block:
		// Fill slots evenly when the rank count does not divide: nodes get
		// ceil/floor contiguous chunks, matching per-node process counts of
		// typical hostfile placement.
		base := spec.NP / nodes
		extra := spec.NP % nodes
		r := 0
		for n := 0; n < nodes; n++ {
			cnt := base
			if n < extra {
				cnt++
			}
			for i := 0; i < cnt; i++ {
				pl.NodeOf[r] = n
				r++
			}
			pl.RanksPerNode[n] = cnt
		}
	case Spread:
		for r := 0; r < spec.NP; r++ {
			n := r % nodes
			pl.NodeOf[r] = n
			pl.RanksPerNode[n]++
		}
	default:
		return nil, fmt.Errorf("cluster: unknown policy %v", spec.Policy)
	}

	for n, cnt := range pl.RanksPerNode {
		if cnt > slots {
			return nil, fmt.Errorf("cluster: node %d of %s would hold %d ranks but has %d slots",
				n, p.Name, cnt, slots)
		}
	}
	if spec.MemPerRank > 0 {
		for n, cnt := range pl.RanksPerNode {
			need := spec.MemPerRank * int64(cnt)
			if need > p.MemPerNode {
				return nil, fmt.Errorf("cluster: node %d of %s needs %.1f GB for %d ranks but has %.1f GB",
					n, p.Name, float64(need)/(1<<30), cnt, float64(p.MemPerNode)/(1<<30))
			}
		}
	}
	return pl, nil
}

// SameNode reports whether ranks a and b share a node.
func (pl *Placement) SameNode(a, b int) bool {
	return pl.NodeOf[a] == pl.NodeOf[b]
}

// MaxRanksPerNode returns the highest per-node rank count.
func (pl *Placement) MaxRanksPerNode() int {
	m := 0
	for _, c := range pl.RanksPerNode {
		if c > m {
			m = c
		}
	}
	return m
}

// MinNodesFor returns the fewest nodes of p able to hold np ranks each
// needing memPerRank bytes, considering both slots and memory, or an error
// when the platform cannot hold the job at all. This reproduces the paper's
// MetUM-on-EC2 constraint, where 20 GB nodes forced ≥2 nodes (and 3 nodes
// for 24 processes).
func MinNodesFor(p *platform.Platform, np int, memPerRank int64) (int, error) {
	slots := p.SlotsPerNode()
	for nodes := (np + slots - 1) / slots; nodes <= p.Nodes; nodes++ {
		maxPerNode := (np + nodes - 1) / nodes
		if memPerRank*int64(maxPerNode) <= p.MemPerNode {
			return nodes, nil
		}
	}
	return 0, fmt.Errorf("cluster: %s cannot hold %d ranks of %.1f GB each",
		p.Name, np, float64(memPerRank)/(1<<30))
}
