package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/npb"
	"repro/internal/npb/suite"
	"repro/internal/platform"
)

// Ablation benchmarks: each disables one model ingredient and reports the
// resulting headline metric next to the full model's, quantifying which
// mechanism produces which of the paper's findings. (DESIGN.md §4/§5.)

// skelComm returns (time, %comm) of a kernel skeleton on p.
func skelComm(b *testing.B, kernel string, p *platform.Platform, np int) (float64, float64) {
	b.Helper()
	fn, err := suite.Skeleton(kernel)
	if err != nil {
		b.Fatal(err)
	}
	out, err := core.Execute(core.RunSpec{Platform: p, NP: np}, func(c *mpi.Comm) error {
		return fn(c, npb.ClassB)
	})
	if err != nil {
		b.Fatal(err)
	}
	return out.Time(), out.Profile.CommPercent()
}

// BenchmarkAblationNICContention removes the DCC vSwitch's super-linear
// NIC-sharing exponent: without it, Table II's DCC communication collapse
// (FT ~85% at np>=16) cannot be reproduced.
func BenchmarkAblationNICContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		full := platform.DCC()
		_, withExp := skelComm(b, "ft", full, 32)

		linear := platform.DCC()
		linear.Inter.ShareExponent = 1 // fair sharing only
		_, without := skelComm(b, "ft", linear, 32)

		if i == 0 {
			b.ReportMetric(withExp, "comm%-ft-dcc-full")
			b.ReportMetric(without, "comm%-ft-dcc-linear-share")
		}
	}
}

// BenchmarkAblationNUMAMasking removes the hypervisor NUMA-masking
// penalty: the paper's CG speedup dip at 8 processes on DCC disappears.
func BenchmarkAblationNUMAMasking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		speedup8 := func(p *platform.Platform) float64 {
			t1, _ := skelComm(b, "cg", p, 1)
			t8, _ := skelComm(b, "cg", p, 8)
			return t1 / t8
		}
		masked := speedup8(platform.DCC())

		pinned := platform.DCC()
		pinned.NUMAPinned = true // pretend the guest could pin memory
		unmasked := speedup8(pinned)

		if i == 0 {
			b.ReportMetric(masked, "cg-speedup8-numa-masked")
			b.ReportMetric(unmasked, "cg-speedup8-numa-pinned")
		}
	}
}

// BenchmarkAblationHyperThreading grants EC2's hardware threads full
// core-like throughput: the EC2 dip at 16 processes (and Table III's
// rcomp=2.39) vanish for the compute-bound EP, confirming the paper's
// oversubscription diagnosis. (FT's dip would persist — at 16 ranks/node
// it is memory-bandwidth-bound, which hardware threads cannot fix.)
func BenchmarkAblationHyperThreading(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eff16 := func(p *platform.Platform) float64 {
			t8, _ := skelComm(b, "ep", p, 8)
			t16, _ := skelComm(b, "ep", p, 16)
			return t8 / t16 / 2
		}
		real16 := eff16(platform.EC2())

		magic := platform.EC2()
		magic.CPU.HTBonus = 1.0 // each hardware thread behaves like a core
		ideal16 := eff16(magic)

		if i == 0 {
			b.ReportMetric(real16, "ep-ec2-8to16-efficiency")
			b.ReportMetric(ideal16, "ep-ec2-8to16-efficiency-fullHT")
		}
	}
}

// BenchmarkAblationJitter strips all stochastic noise from DCC: the
// latency fluctuation of Figure 2 (and the residual irregularity of
// Figure 7) is jitter-driven, while the mean times barely move —
// "we saw only minor effects (e.g. jitter) that were directly
// attributable to virtualization".
func BenchmarkAblationJitter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		noisy := platform.DCC()
		tNoisy, _ := skelComm(b, "is", noisy, 32)

		quiet := platform.DCC()
		quiet.ComputeJitter = platform.DCC().ComputeJitter
		quiet.ComputeJitter.Sigma = 0
		quiet.ComputeJitter.SpikeProb = 0
		quiet.Inter.Jitter.Sigma = 0
		quiet.Inter.Jitter.AddMean = 0
		quiet.Inter.Jitter.SpikeProb = 0
		tQuiet, _ := skelComm(b, "is", quiet, 32)

		if i == 0 {
			b.ReportMetric(tNoisy, "is-dcc32-seconds-noisy")
			b.ReportMetric(tQuiet, "is-dcc32-seconds-quiet")
			b.ReportMetric(tNoisy/tQuiet, "noise-slowdown-ratio")
		}
	}
}
