//go:build !race

package repro

// raceEnabled reports whether the race detector instruments this build;
// see race_on_test.go. The examples smoke test is skipped under the
// detector — the example binaries it builds would not be instrumented.
const raceEnabled = false
