// Package repro's benchmark harness: one testing.B benchmark per table and
// figure of the paper's evaluation section. Each benchmark regenerates its
// artefact (on reduced sweeps where the full figure would take minutes)
// and reports headline numbers as custom metrics, so `go test -bench=.
// -benchmem` doubles as a one-shot reproduction check.
package repro

import (
	"testing"

	"repro/internal/apps/chaste"
	"repro/internal/apps/metum"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/facility"
	"repro/internal/mpi"
	"repro/internal/npb"
	"repro/internal/npb/suite"
	"repro/internal/osu"
	"repro/internal/platform"
	"repro/internal/sched"
)

// BenchmarkFig1OSUBandwidth regenerates Figure 1 on a reduced size sweep
// and reports the three peak bandwidths.
func BenchmarkFig1OSUBandwidth(b *testing.B) {
	sizes := []int{64, 4096, 1 << 18, 4 << 20}
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig1OSUBandwidth(sizes)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range fig.Series {
				b.ReportMetric(s.Y[len(s.Y)-1], "MB/s-peak-"+s.Name[:3])
			}
		}
	}
}

// BenchmarkFig2OSULatency regenerates Figure 2 and reports the small-
// message latencies.
func BenchmarkFig2OSULatency(b *testing.B) {
	sizes := []int{1, 1024, 1 << 16}
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig2OSULatency(sizes)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range fig.Series {
				b.ReportMetric(s.Y[0], "us-1B-"+s.Name[:3])
			}
		}
	}
}

// BenchmarkFig3NPBSerial regenerates the Figure 3 normalisation table.
func BenchmarkFig3NPBSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3NPBSerial(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4NPBScaling regenerates one representative Figure 4 panel
// per kernel family (EP compute-bound, CG latency-bound, FT alltoall).
func BenchmarkFig4NPBScaling(b *testing.B) {
	for _, kernel := range []string{"ep", "cg", "ft"} {
		kernel := kernel
		b.Run(kernel, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fig, err := experiments.Fig4NPBScaling(kernel)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					for _, s := range fig.Series {
						b.ReportMetric(s.Y[len(s.Y)-1], "speedup64-"+s.Name)
					}
				}
			}
		})
	}
}

// BenchmarkTable2CommFraction regenerates the Table II %comm entries at
// np=64 (the row the paper's discussion focuses on).
func BenchmarkTable2CommFraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, kernel := range []string{"cg", "ft", "is"} {
			fn, err := suite.Skeleton(kernel)
			if err != nil {
				b.Fatal(err)
			}
			for _, p := range platform.All() {
				out, err := core.Execute(core.RunSpec{Platform: p, NP: 64}, func(c *mpi.Comm) error {
					return fn(c, npb.ClassB)
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(out.Profile.CommPercent(), "comm%-"+kernel+"-"+p.Name)
				}
			}
		}
	}
}

// BenchmarkFig5ChasteScaling regenerates the Figure 5 endpoints: Chaste
// total/KSp times at 8 and 64 cores on Vayu and DCC.
func BenchmarkFig5ChasteScaling(b *testing.B) {
	cfg := chaste.Default()
	run := func(p *platform.Platform, np int) *chaste.Stats {
		var stats *chaste.Stats
		_, err := core.Execute(core.RunSpec{Platform: p, NP: np, MemPerRank: cfg.MemPerRank(np)},
			func(c *mpi.Comm) error {
				s, err := chaste.Run(c, cfg)
				if err != nil {
					return err
				}
				if c.Rank() == 0 {
					stats = s
				}
				return nil
			})
		if err != nil {
			b.Fatal(err)
		}
		return stats
	}
	for i := 0; i < b.N; i++ {
		for _, p := range []*platform.Platform{platform.Vayu(), platform.DCC()} {
			t8 := run(p, 8)
			t64 := run(p, 64)
			if i == 0 {
				b.ReportMetric(t8.Total, "t8-"+p.Name)
				b.ReportMetric(t8.Total/t64.Total, "speedup64-"+p.Name)
			}
		}
	}
}

// BenchmarkFig6MetUMScaling regenerates the Figure 6 endpoints: MetUM
// warmed speedups at 64 cores for the four configurations.
func BenchmarkFig6MetUMScaling(b *testing.B) {
	cfg := metum.Default()
	run := func(p *platform.Platform, np, nodes int) *metum.Stats {
		var stats *metum.Stats
		_, err := core.Execute(core.RunSpec{Platform: p, NP: np, Nodes: nodes, MemPerRank: cfg.MemPerRank(np)},
			func(c *mpi.Comm) error {
				s, err := metum.Run(c, cfg)
				if err != nil {
					return err
				}
				if c.Rank() == 0 {
					stats = s
				}
				return nil
			})
		if err != nil {
			b.Fatal(err)
		}
		return stats
	}
	for i := 0; i < b.N; i++ {
		for _, v := range []struct {
			name  string
			p     *platform.Platform
			nodes int
		}{
			{"vayu", platform.Vayu(), 0},
			{"dcc", platform.DCC(), 0},
			{"ec2", platform.EC2(), 0},
			{"ec2-4", platform.EC2(), 4},
		} {
			t8 := run(v.p, 8, min(v.nodes, 4))
			t64 := run(v.p, 64, v.nodes)
			if i == 0 {
				b.ReportMetric(t8.Warmed/t64.Warmed, "speedup64-"+v.name)
			}
		}
	}
}

func min(a, b int) int {
	if a == 0 || b == 0 {
		return 0
	}
	if a < b {
		return a
	}
	return b
}

// BenchmarkTable3MetUMStats regenerates Table III and reports the headline
// ratios.
func BenchmarkTable3MetUMStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table3MetUM()
		if err != nil {
			b.Fatal(err)
		}
		_ = t
	}
}

// BenchmarkFig7Breakdown regenerates the per-process ATM_STEP breakdown.
func BenchmarkFig7Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7Breakdown(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOSURawRuntime measures the simulator's own throughput on the
// micro-benchmark (how fast the virtual cluster executes), a guard against
// performance regressions in the runtime itself.
func BenchmarkOSURawRuntime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := osu.Latency(platform.Vayu(), []int{8}); err != nil {
			b.Fatal(err)
		}
	}
}

// reproQuickJobs builds the scheduler job set the sequential/parallel
// repro benchmarks share: the quick sweep minus fig5, whose Chaste sweep
// alone would dominate the measurement, with caching off so every
// iteration simulates.
func reproQuickJobs(b *testing.B) []sched.Job {
	ids := []string{"fig1", "fig2", "fig3", "fig4", "table2", "fig6", "table3", "fig7", "chaste32"}
	jobs, err := experiments.Jobs(experiments.SweepQuick, 0, ids)
	if err != nil {
		b.Fatal(err)
	}
	return jobs
}

func benchmarkRepro(b *testing.B, workers int) {
	for i := 0; i < b.N; i++ {
		results, err := sched.Run(reproQuickJobs(b), sched.Options{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var virtual float64
			for _, r := range results {
				virtual += r.Virtual
			}
			b.ReportMetric(virtual, "simulated-s")
		}
	}
}

// BenchmarkReproQuickSequential regenerates the quick artefact set on one
// worker — the baseline the parallel variant is compared against.
func BenchmarkReproQuickSequential(b *testing.B) { benchmarkRepro(b, 1) }

// BenchmarkReproQuickParallel regenerates the same set on 8 workers,
// measuring the scheduler's wall-clock win on a multi-core host.
func BenchmarkReproQuickParallel(b *testing.B) { benchmarkRepro(b, 8) }

// benchmarkFacility streams a seeded multi-tenant workload through the
// fully-featured batch facility (backfill, fairshare, static broker),
// mirroring the perfbench facility/run-* allocation gates: per-iteration
// cost is the incremental scheduler's event loop, reported per job.
func benchmarkFacility(b *testing.B, jobs, tenants int) {
	const slots = 512
	wl, err := facility.Generate(facility.WorkloadSpec{
		Seed: 1, Jobs: jobs, Tenants: tenants, Slots: slots,
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := facility.Config{
		Slots:     [facility.NumPools]int{slots, slots / 2, slots / 2},
		Backfill:  true,
		Fairshare: true,
		Broker: &facility.Broker{
			Factors: map[string][facility.NumPools]float64{
				"ep": {1, 1.1, 1.3}, "cg": {1, 1.8, 2.6}, "mg": {1, 1.5, 2.1},
				"ft": {1, 1.9, 2.8}, "is": {1, 1.4, 1.9},
			},
			DefaultFactors: [facility.NumPools]float64{1, 1.3, 2},
		},
		Prices: [facility.NumPools]float64{0, 0.34, 0.68},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := facility.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		done := 0
		if _, err := f.RunStream(wl, func(facility.Outcome) { done++ }); err != nil {
			b.Fatal(err)
		}
		if done != jobs {
			b.Fatalf("emitted %d of %d outcomes", done, jobs)
		}
	}
	b.ReportMetric(float64(b.N*jobs)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkFacility10k is the facility event loop at 10k jobs / 1k
// tenants; BenchmarkFacility100k is the same loop one order of
// magnitude up, whose near-linear scaling is the point of the
// incremental scheduling structures.
func BenchmarkFacility10k(b *testing.B)  { benchmarkFacility(b, 10000, 1000) }
func BenchmarkFacility100k(b *testing.B) { benchmarkFacility(b, 100000, 10000) }
